// Package vinesim is the simulation-plane scheduler: it executes a
// core.Workload on a simulated cluster (internal/cluster + internal/netsim)
// under a configurable stack — storage system, data flow, task paradigm —
// reproducing the paper's four stack evolutions (§IV, Table I) and the
// Dask.Distributed comparator (§V.B) with one engine:
//
//	Stack 1  Work Queue data flow (all bytes via manager), standard tasks, HDFS
//	Stack 2  same, but VAST
//	Stack 3  TaskVine: worker caches + peer transfers, standard tasks
//	Stack 4  TaskVine serverless: function calls with hoisted imports
//
// The scheduling policies (replica-table locality placement, peer-transfer
// governor, loss recovery) come from internal/core and mirror the live
// engine in internal/vine.
package vinesim

import (
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/params"
	"hepvine/internal/units"
)

// DataFlow selects where intermediate data lives and moves.
type DataFlow int

// Data-flow models.
const (
	// FlowManager routes every input and output through the manager
	// (Work Queue, §III.B).
	FlowManager DataFlow = iota
	// FlowPeer retains outputs on workers and moves them peer-to-peer
	// (TaskVine, §IV.B).
	FlowPeer
)

// Scheduler selects the scheduler behaviour model.
type Scheduler int

// Scheduler models.
const (
	// SchedVine is the Work Queue / TaskVine family (one manager, node
	//-level workers).
	SchedVine Scheduler = iota
	// SchedDask models Dask.Distributed: single-core share-nothing worker
	// processes, a heavier central scheduler, and instability at scale.
	SchedDask
)

// Config selects one point in the design space.
type Config struct {
	Label string

	Workers        int
	CoresPerWorker int
	WorkerDisk     units.Bytes

	Flow       DataFlow
	Serverless bool // function calls instead of standard tasks
	Hoist      bool // hoist imports to the library preamble

	FS           params.FS // shared filesystem for dataset reads
	ImportsLocal bool      // imports read node-local disk (TaskVine caches the environment) instead of the shared FS
	// ImportFS overrides where library imports are read from (Fig. 10's
	// local-vs-VAST axis). Zero value: LocalDisk when ImportsLocal, else
	// VAST (the software environment lives on the general-purpose shared
	// FS regardless of where the data sits).
	ImportFS params.FS

	TransferCap     int     // per-source concurrent peer transfers; 0 = params default
	PreemptFraction float64 // fraction of workers preempted during the run
	PreemptWindow   time.Duration
	StartupSpread   time.Duration
	// SpeedSpread makes worker CPUs heterogeneous (±fraction of nominal),
	// matching the "heterogeneous campus HTCondor cluster" of §IV.
	SpeedSpread float64

	Scheduler Scheduler

	// Policy names the placement policy (internal/sched registry:
	// "locality", "binpack", "spread", "random"). Empty selects locality —
	// the same data-gravity greedy the live manager defaults to, so the
	// simulator keeps modelling the engine it is meant to predict. The
	// seed only affects the random policy.
	Policy string

	Seed        uint64
	SampleEvery time.Duration
	Horizon     time.Duration // abort if not done by then (default 4h)

	// RecordPerWorker enables per-worker time series (cache usage for
	// Fig. 11, activity lanes for Fig. 13) at some memory cost.
	RecordPerWorker bool
	// RecordTrace captures one event record per task execution (worker,
	// dispatch/start/end times) — the raw data behind Fig. 13's per-worker
	// activity bars.
	RecordTrace bool

	// Recorder, if set, receives the same typed lifecycle events the live
	// engine emits — task submit/dispatch/start/done/retry, transfers,
	// worker join/loss, cache evictions — stamped with virtual time, so
	// one trace format (and one set of renderers) serves both planes.
	Recorder *obs.Recorder
}

func (c *Config) defaults() {
	if c.CoresPerWorker <= 0 {
		c.CoresPerWorker = params.WorkerCores
	}
	if c.TransferCap <= 0 {
		c.TransferCap = params.DefaultTransferCapPerSource
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = time.Second
	}
	if c.Horizon <= 0 {
		c.Horizon = 4 * time.Hour
	}
	if c.FS.Name == "" {
		c.FS = params.VAST
	}
	if c.PreemptWindow <= 0 {
		c.PreemptWindow = params.DefaultPreemptWindow
	}
}

// Cores reports total configured cores.
func (c Config) Cores() int { return c.Workers * c.CoresPerWorker }

// StackConfig returns the Table-I stack configurations applied to the given
// pool shape. Stage numbering follows the paper.
func StackConfig(stack, workers, coresPerWorker int, seed uint64) Config {
	c := Config{
		Label:           "stack" + string(rune('0'+stack)),
		Workers:         workers,
		CoresPerWorker:  coresPerWorker,
		WorkerDisk:      params.WorkerDisk,
		PreemptFraction: params.PreemptFraction,
		StartupSpread:   params.WorkerStartupSpread,
		SpeedSpread:     params.WorkerSpeedSpread,
		Seed:            seed,
	}
	switch stack {
	case 1:
		c.Flow, c.Serverless, c.FS, c.ImportsLocal = FlowManager, false, params.HDFS, false
	case 2:
		c.Flow, c.Serverless, c.FS, c.ImportsLocal = FlowManager, false, params.VAST, false
	case 3:
		c.Flow, c.Serverless, c.FS, c.ImportsLocal = FlowPeer, false, params.VAST, true
	case 4:
		c.Flow, c.Serverless, c.Hoist, c.FS, c.ImportsLocal = FlowPeer, true, true, params.VAST, true
	default:
		panic("vinesim: stack must be 1..4")
	}
	return c
}

// DaskConfig returns the Dask.Distributed comparator at the given shape.
func DaskConfig(workers, coresPerWorker int, seed uint64) Config {
	return Config{
		Label:          "dask.distributed",
		Workers:        workers,
		CoresPerWorker: coresPerWorker,
		WorkerDisk:     params.WorkerDisk,
		Flow:           FlowPeer,
		Serverless:     true, // persistent worker processes
		Hoist:          true, // workers import once
		FS:             params.VAST,
		ImportsLocal:   false,
		Scheduler:      SchedDask,
		StartupSpread:  params.WorkerStartupSpread,
		Seed:           seed,
	}
}

// TaskEvent is one recorded task execution (RecordTrace).
type TaskEvent struct {
	Key      string
	Worker   int // node id (1-based)
	Attempt  int
	Dispatch time.Duration // manager handed it to the dispatch pipeline
	Start    time.Duration // user code began on a core
	End      time.Duration // execution finished on the worker
}

// Sample is one timeline point (Fig. 12, Fig. 15).
type Sample struct {
	T       time.Duration
	Running int // tasks executing user code on a core
	Waiting int // tasks not yet dispatched (ready or blocked)
	Done    int
}

// Result is everything a run produces.
type Result struct {
	Config    Config
	Completed bool
	Failure   string
	Runtime   time.Duration

	Samples []Sample

	// TaskExec records per-task on-worker time (startup + imports +
	// compute) for successful executions (Fig. 8).
	TaskExec []time.Duration

	// TransferMatrix[src][dst] is bytes moved pairwise (Fig. 7).
	TransferMatrix map[string]map[string]units.Bytes
	// ManagerMoved is bytes into+out of the manager endpoint.
	ManagerMoved units.Bytes
	// MaxPairBytes is the largest pairwise volume excluding FS reads.
	MaxPairBytes units.Bytes

	// Per-worker series, aligned with Samples (RecordPerWorker only).
	CacheSeries [][]units.Bytes // [sample][worker]
	ActiveTasks [][]int         // [sample][worker]

	// Trace holds per-execution records (RecordTrace only), in completion
	// order.
	Trace []TaskEvent

	PeakCachePerWorker []units.Bytes
	BusyPerWorker      []time.Duration

	Preempted    int
	DiskFailures int
	TasksRerun   int
	PeerCount    int
	ManagerCount int
	FSReadBytes  units.Bytes

	TasksDone int

	// QueueWaitTotal accumulates ready→dispatch latency over
	// QueueWaitCount placements (re-dispatches restart the clock), the
	// simulation-plane analogue of vine_task_queue_wait_seconds.
	QueueWaitTotal time.Duration
	QueueWaitCount int

	// Snapshot is the run's counters in the shared observability schema,
	// directly comparable with a live vine.Manager.Stats() snapshot.
	Snapshot obs.Snapshot
}

// MeanQueueWait reports the average ready→dispatch latency.
func (r *Result) MeanQueueWait() time.Duration {
	if r.QueueWaitCount == 0 {
		return 0
	}
	return r.QueueWaitTotal / time.Duration(r.QueueWaitCount)
}

// Throughput reports completed tasks per second.
func (r *Result) Throughput() float64 {
	if r.Runtime <= 0 {
		return 0
	}
	return float64(r.TasksDone) / r.Runtime.Seconds()
}

// Utilization reports mean busy fraction across worker cores over the run.
func (r *Result) Utilization() float64 {
	if r.Runtime <= 0 || len(r.BusyPerWorker) == 0 {
		return 0
	}
	var busy time.Duration
	for _, b := range r.BusyPerWorker {
		busy += b
	}
	total := r.Runtime * time.Duration(len(r.BusyPerWorker)*r.Config.CoresPerWorker)
	if total <= 0 {
		return 0
	}
	return float64(busy) / float64(total)
}
