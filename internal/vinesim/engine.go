package vinesim

import (
	"fmt"
	"time"

	"hepvine/internal/cluster"
	"hepvine/internal/core"
	"hepvine/internal/dag"
	"hepvine/internal/netsim"
	"hepvine/internal/obs"
	"hepvine/internal/params"
	"hepvine/internal/randx"
	"hepvine/internal/sched"
	"hepvine/internal/sim"
	"hepvine/internal/storage"
	"hepvine/internal/units"
)

// state is one in-flight simulation.
type state struct {
	cfg Config
	wl  *core.Workload

	pool    *cluster.Pool
	fs      *storage.SharedFS
	eng     *sim.Engine
	net     *netsim.Network
	tracker *dag.Tracker
	reps    *core.ReplicaTable
	gov     *core.Governor
	rng     *randx.RNG
	policy  *sched.Policy

	// manager serial server
	mgrFree time.Duration

	// per-task state
	attempt    map[dag.Key]int           // bumped on every (re)dispatch; stale callbacks bail
	execing    map[dag.Key]bool          // user code on a core right now
	assigned   map[dag.Key]int           // node id while dispatched
	imported   map[int]bool              // node did its hoisted import
	dispatched map[dag.Key]bool          // dispatch pipeline entered, not yet retired
	retired    map[dag.Key]bool          // first retirement done (re-runs skip GC accounting)
	dispatchAt map[dag.Key]time.Duration // when the current attempt entered the pipeline
	execAt     map[dag.Key]time.Duration // when user code started
	readyAt    map[dag.Key]time.Duration // when the task (last) became ready, for queue wait

	// schedCands is the per-placement candidate scratch buffer, reused so
	// steady-state scheduling stays allocation-free like the live plane.
	schedCands []sched.Candidate

	// refs counts not-yet-done consumers per file; at zero the file is
	// garbage-collected from worker caches (TaskVine deletes cache entries
	// once no pending task needs them, which is what keeps long runs
	// within the 108GB worker disks).
	refs map[storage.FileID]int

	res  Result
	done bool
}

// record emits one trace event stamped with the current virtual time.
// A nil recorder costs one branch per call site.
func (st *state) record(ev obs.Event) {
	if st.cfg.Recorder == nil {
		return
	}
	ev.T = st.eng.Now()
	st.cfg.Recorder.Record(ev)
}

// Run executes the workload under the configuration and returns the result.
func Run(cfg Config, wl *core.Workload) *Result {
	cfg.defaults()
	if err := wl.Validate(); err != nil {
		return &Result{Config: cfg, Failure: err.Error()}
	}

	st := &state{cfg: cfg, wl: wl}
	st.res.Config = cfg
	pol, err := sched.ByName(cfg.Policy, cfg.Seed)
	if err != nil {
		st.res.Failure = err.Error()
		return &st.res
	}
	st.policy = pol

	// Dask.Distributed runs one single-core, share-nothing worker process
	// per core: model each as its own node with a slice of the NIC/disk.
	poolCfg := cluster.Config{
		Workers:        cfg.Workers,
		CoresPerWorker: cfg.CoresPerWorker,
		WorkerDisk:     cfg.WorkerDisk,
		StartupSpread:  cfg.StartupSpread,
		SpeedSpread:    cfg.SpeedSpread,
		Seed:           cfg.Seed,
	}
	if cfg.Scheduler == SchedDask {
		n := cfg.CoresPerWorker
		poolCfg.Workers = cfg.Workers * n
		poolCfg.CoresPerWorker = 1
		poolCfg.WorkerDisk = cfg.WorkerDisk / units.Bytes(n)
		poolCfg.WorkerNIC = params.WorkerNIC / units.BytesPerSec(n)
	}
	st.pool = cluster.New(poolCfg)
	st.eng = st.pool.Eng
	st.net = st.pool.Net
	st.fs = storage.NewSharedFS(st.eng, st.net, cfg.FS)
	st.rng = randx.NewStream(cfg.Seed, 13)
	st.reps = core.NewReplicaTable()
	st.gov = core.NewGovernor(cfg.TransferCap)
	st.attempt = make(map[dag.Key]int)
	st.execing = make(map[dag.Key]bool)
	st.assigned = make(map[dag.Key]int)
	st.imported = make(map[int]bool)
	st.dispatched = make(map[dag.Key]bool)
	st.retired = make(map[dag.Key]bool)
	st.dispatchAt = make(map[dag.Key]time.Duration)
	st.execAt = make(map[dag.Key]time.Duration)
	st.readyAt = make(map[dag.Key]time.Duration)
	st.refs = make(map[storage.FileID]int)
	for _, k := range wl.Graph.Keys() {
		spec := wl.Graph.Task(k).Spec.(*core.SimSpec)
		for _, f := range spec.Inputs {
			st.refs[f]++
		}
		for _, d := range wl.Graph.Task(k).Deps {
			st.refs[core.OutputFileID(d)]++
		}
	}
	// The root's output is the workflow result; never collect it.
	st.refs[core.OutputFileID(wl.Root)]++

	// Dask.Distributed cannot run these workloads at large scale (§V.B).
	if cfg.Scheduler == SchedDask && cfg.Cores() >= params.DaskCrashCores {
		st.res.Failure = fmt.Sprintf("dask.distributed: workers and application crash/hang at %d cores", cfg.Cores())
		return &st.res
	}

	// Depth-priority dispatch: reductions run as soon as their inputs
	// exist, so intermediates are consumed (and garbage-collected) at the
	// rate they are produced instead of accumulating across the whole map
	// phase — essential for the 108GB worker disks at small scale.
	tr, err := dag.NewTrackerPrio(wl.Graph, wl.Graph.Depths())
	if err != nil {
		st.res.Failure = err.Error()
		return &st.res
	}
	st.tracker = tr

	for f, size := range wl.DatasetFiles {
		st.reps.SetSize(f, size)
	}
	for _, k := range wl.Graph.Keys() {
		spec := wl.Graph.Task(k).Spec.(*core.SimSpec)
		st.reps.SetSize(core.OutputFileID(k), spec.OutputSize)
	}

	st.res.PeakCachePerWorker = make([]units.Bytes, len(st.pool.Workers))
	st.res.BusyPerWorker = make([]time.Duration, len(st.pool.Workers))

	// The whole graph is known up front; submit events land at t=0.
	if cfg.Recorder != nil {
		for _, k := range wl.Graph.Topo() {
			st.record(obs.Event{Type: obs.EvTaskSubmit, Task: string(k)})
		}
	}

	st.pool.Start(func(n *cluster.Node) {
		st.record(obs.Event{Type: obs.EvWorkerJoin, Worker: n.Name,
			Detail: fmt.Sprintf("%d cores", n.Cores)})
		st.schedule()
	})
	if cfg.PreemptFraction > 0 {
		st.pool.SchedulePreemptions(cfg.PreemptFraction, cfg.PreemptWindow, st.onPreempt)
	}
	st.sampleLoop()

	st.eng.RunUntil(cfg.Horizon, func() bool { return st.done })
	if !st.done {
		if st.res.Failure == "" {
			free := 0
			for _, w := range st.pool.Workers {
				if w.Alive {
					free += w.FreeCores
				}
			}
			snap := st.tracker.Snapshot()
			st.res.Failure = fmt.Sprintf(
				"horizon %v exceeded (%d/%d done; waiting=%d ready=%d running=%d execing=%d dispatched=%d alive=%d freeCores=%d govQ=%d flows=%d)",
				cfg.Horizon, snap.Done, wl.Graph.Len(), snap.Waiting, snap.Ready, snap.Running,
				len(st.execing), len(st.dispatched), st.pool.AliveWorkers(), free,
				st.gov.QueueLen(), st.net.ActiveFlows)
		}
		st.res.Runtime = st.eng.Now()
	}
	st.finishStats()
	return &st.res
}

// ---- sampling ----

func (st *state) sampleLoop() {
	var tick func()
	tick = func() {
		if st.done {
			return
		}
		st.takeSample()
		st.eng.Schedule(st.cfg.SampleEvery, tick)
	}
	st.eng.Schedule(0, tick)
}

func (st *state) takeSample() {
	snap := st.tracker.Snapshot()
	s := Sample{
		T:       st.eng.Now(),
		Running: len(st.execing),
		Waiting: snap.Waiting + snap.Ready,
		Done:    snap.Done,
	}
	st.res.Samples = append(st.res.Samples, s)
	if st.cfg.RecordPerWorker {
		caches := make([]units.Bytes, len(st.pool.Workers))
		active := make([]int, len(st.pool.Workers))
		for i, w := range st.pool.Workers {
			caches[i] = w.Disk.Used()
			active[i] = w.Cores - w.FreeCores
		}
		st.res.CacheSeries = append(st.res.CacheSeries, caches)
		st.res.ActiveTasks = append(st.res.ActiveTasks, active)
	}
}

// inPipeline counts tasks dispatched (staging or moving) but not executing.
func (st *state) inPipeline() int {
	n := 0
	for k := range st.dispatched {
		if !st.execing[k] {
			n++
		}
	}
	return n
}

// ---- manager serial server ----

// mgrOp runs fn after the manager's serial queue reaches it; each op costs
// the given CPU time on the single-threaded manager.
func (st *state) mgrOp(cost time.Duration, fn func()) {
	now := st.eng.Now()
	if st.mgrFree < now {
		st.mgrFree = now
	}
	st.mgrFree += cost
	st.eng.ScheduleAt(st.mgrFree, fn)
}

func (st *state) dispatchCost() time.Duration {
	if st.cfg.Scheduler == SchedDask {
		return time.Duration(float64(params.DaskSchedulerOverhead) * params.DaskSchedulerScale(len(st.pool.Workers)))
	}
	if st.cfg.Serverless {
		return params.DispatchCostFunctionCall
	}
	return params.DispatchCostTask
}

func (st *state) collectCost() time.Duration {
	if st.cfg.Scheduler == SchedDask {
		return time.Duration(float64(params.DaskSchedulerOverhead) * params.DaskSchedulerScale(len(st.pool.Workers)) / 2)
	}
	return params.CollectCost
}

// ---- scheduling ----

func (st *state) schedule() {
	if st.done {
		return
	}
	if st.pool.AliveWorkers() == 0 && st.eng.Now() > st.cfg.StartupSpread {
		// Every worker is gone (preempted or disk-failed); nothing can
		// ever run again. Fail fast instead of grinding to the horizon.
		st.done = true
		st.res.Runtime = st.eng.Now()
		st.res.Failure = "all workers lost"
		return
	}
	for {
		peek := st.tracker.PeekReady(1)
		if len(peek) == 0 {
			return
		}
		k := peek[0]
		spec := st.wl.Graph.Task(k).Spec.(*core.SimSpec)
		inputs := st.inputFiles(k, spec)

		// Present candidates in ascending node id (pool order) so the
		// policy's first-wins tie-break reproduces the historical
		// lowest-id determinism.
		st.schedCands = st.schedCands[:0]
		for _, w := range st.pool.Workers {
			if w.Alive && w.FreeCores > 0 {
				st.schedCands = append(st.schedCands, sched.Candidate{
					ID:         w.ID,
					Cores:      w.Cores,
					FreeCores:  w.FreeCores,
					LocalBytes: localBytes(st.reps, inputs, w.ID),
				})
			}
		}
		if len(st.schedCands) == 0 {
			return
		}
		task := sched.Task{ID: string(k), Cores: 1}
		idx, score := st.policy.Pick(&task, st.schedCands)
		if idx < 0 {
			return
		}
		nodeID := st.schedCands[idx].ID
		node := st.pool.Workers[nodeID-1]

		got := st.tracker.NextReady(1)
		if len(got) != 1 || got[0] != k {
			return // defensive; PeekReady/NextReady disagree only on bugs
		}
		if err := node.Busy(1); err != nil {
			st.tracker.Requeue(k)
			return
		}
		st.assigned[k] = nodeID
		st.dispatched[k] = true
		st.attempt[k]++
		att := st.attempt[k]
		now := st.eng.Now()
		wait := now - st.readyAt[k] // zero-value readyAt = ready since t0
		if wait < 0 {
			wait = 0
		}
		st.res.QueueWaitTotal += wait
		st.res.QueueWaitCount++
		if st.cfg.RecordTrace {
			st.dispatchAt[k] = now
		}
		if st.cfg.Recorder != nil {
			detail := fmt.Sprintf("policy=%s score=%g", st.policy.Name, score)
			st.record(obs.Event{Type: obs.EvSchedDecision, Task: string(k),
				Worker: node.Name, Dur: wait, Detail: detail})
			st.record(obs.Event{Type: obs.EvTaskDispatch, Task: string(k),
				Worker: node.Name, Attempt: att - 1, Dur: wait, Detail: detail})
		}
		st.mgrOp(st.dispatchCost(), func() { st.sendPayload(k, att) })
	}
}

// localBytes sums the sizes of inputs already resident on a node — the
// replica-table feed for the policy's locality scorer, mirroring the live
// manager's per-worker file index.
func localBytes(reps *core.ReplicaTable, inputs []storage.FileID, node int) int64 {
	var local units.Bytes
	for _, f := range inputs {
		if reps.Holds(f, node) {
			local += reps.Size(f)
		}
	}
	return int64(local)
}

// inputFiles lists a task's input files: dataset files plus dep outputs.
func (st *state) inputFiles(k dag.Key, spec *core.SimSpec) []storage.FileID {
	var files []storage.FileID
	files = append(files, spec.Inputs...)
	for _, d := range st.wl.Graph.Task(k).Deps {
		files = append(files, core.OutputFileID(d))
	}
	return files
}

// stale reports whether a callback belongs to a superseded attempt.
func (st *state) stale(k dag.Key, att int) bool {
	return st.done || st.attempt[k] != att
}

// abandon releases a task's dispatch after its worker died or inputs were
// lost; the tracker has already been updated by the preemption path.
func (st *state) abandon(k dag.Key) {
	delete(st.dispatched, k)
	delete(st.execing, k)
	delete(st.assigned, k)
}

// sendPayload models the dispatch message + serialized function transfer.
func (st *state) sendPayload(k dag.Key, att int) {
	if st.stale(k, att) {
		return
	}
	node := st.node(k)
	if node == nil || !node.Alive {
		return // preemption path requeued it already
	}
	payload := params.TaskPayloadBytes
	if st.cfg.Serverless {
		payload = params.FCPayloadBytes
	}
	st.net.Transfer(st.pool.Manager.EP, node.EP, payload, func() {
		if st.stale(k, att) {
			return
		}
		st.stageInputs(k, att)
	})
}

// stageInputs moves every missing input to the task's worker, then starts
// execution.
func (st *state) stageInputs(k dag.Key, att int) {
	node := st.node(k)
	if node == nil || !node.Alive {
		return
	}
	spec := st.wl.Graph.Task(k).Spec.(*core.SimSpec)
	missing := 0
	var onArrive func()
	start := func() { st.startExec(k, att) }

	files := st.inputFiles(k, spec)
	for _, f := range files {
		if node.Disk.Has(f) {
			continue
		}
		missing++
	}
	if missing == 0 {
		start()
		return
	}
	remaining := missing
	onArrive = func() {
		remaining--
		if remaining == 0 {
			start()
		}
	}
	for _, f := range files {
		if node.Disk.Has(f) {
			continue
		}
		st.stageOne(k, att, f, node, onArrive)
	}
}

// stageOne moves one file to node.
func (st *state) stageOne(k dag.Key, att int, f storage.FileID, node *cluster.Node, onArrive func()) {
	size := st.reps.Size(f)
	_, isDataset := st.wl.DatasetFiles[f]

	landFrom := func(src string) func() {
		return func() {
			if st.stale(k, att) || !node.Alive {
				return
			}
			if err := node.Disk.Put(f, size); err != nil {
				// Cache overflow: the worker fails and is preempted
				// (Fig. 11a's X marks).
				st.res.DiskFailures++
				st.failNode(node)
				return
			}
			st.record(obs.Event{Type: obs.EvTransferDone, Src: src,
				Dst: node.Name, Bytes: int64(size), Detail: string(f)})
			st.bumpPeak(node)
			st.reps.Add(f, node.ID)
			onArrive()
		}
	}
	startTransfer := func(src string) {
		st.record(obs.Event{Type: obs.EvTransferStart, Src: src,
			Dst: node.Name, Bytes: int64(size), Detail: string(f)})
	}

	if st.cfg.Flow == FlowManager {
		// Work Queue path: everything relays through the manager.
		if isDataset && !st.pool.Manager.Disk.Has(f) {
			st.fs.Read(st.pool.Manager.EP, size, func() {
				st.pool.Manager.Disk.Put(f, size)
				st.reps.Add(f, st.pool.Manager.ID)
				st.res.FSReadBytes += size
				st.res.ManagerCount++
				startTransfer(st.pool.Manager.Name)
				st.net.Transfer(st.pool.Manager.EP, node.EP, size, landFrom(st.pool.Manager.Name))
			})
			return
		}
		st.res.ManagerCount++
		startTransfer(st.pool.Manager.Name)
		st.net.Transfer(st.pool.Manager.EP, node.EP, size, landFrom(st.pool.Manager.Name))
		return
	}

	// TaskVine path: peer transfer if any worker holds it; dataset files
	// come from the shared filesystem directly.
	holders := st.liveHolders(f, node.ID)
	if len(holders) == 0 {
		if isDataset {
			startTransfer(st.fs.EP.Name)
			st.fs.Read(node.EP, size, func() {
				st.res.FSReadBytes += size
				landFrom(st.fs.EP.Name)()
			})
			return
		}
		if st.pool.Manager.Disk.Has(f) {
			startTransfer(st.pool.Manager.Name)
			st.net.Transfer(st.pool.Manager.EP, node.EP, size, landFrom(st.pool.Manager.Name))
			return
		}
		// Intermediate with no live replica anywhere: lost to preemption
		// or garbage-collected after its first consumers finished. If the
		// producer is Done, re-run it (this rolls our own task back to
		// Waiting, so this staging attempt goes stale). If the producer is
		// already re-running, poll until its output reappears.
		if prod, ok := keyOfOutput(f); ok && st.tracker.State(prod) == dag.Done {
			st.reviveProducer(prod)
			return
		}
		st.eng.Schedule(500*time.Millisecond, func() {
			if st.stale(k, att) || !node.Alive {
				return
			}
			st.stageOne(k, att, f, node, onArrive)
		})
		return
	}

	req := core.TransferRequest{File: f, Dest: node.ID}
	started := false
	abandoned := false
	st.gov.Request(req, func(maxLoad int) int {
		return st.pickSource(f, node.ID, maxLoad)
	}, func(src int) {
		if abandoned {
			// The watchdog already rerouted this staging; just return the
			// granted slot.
			st.transferDone(src)
			return
		}
		started = true
		st.res.PeerCount++
		srcNode := st.pool.Workers[src-1]
		startTransfer(srcNode.Name)
		st.net.Transfer(srcNode.EP, node.EP, size, func() {
			st.transferDone(src)
			if !srcNode.Alive {
				// Source died mid-transfer: data never fully arrived.
				st.eng.Schedule(0, func() {
					if !st.stale(k, att) && node.Alive {
						st.stageOne(k, att, f, node, onArrive)
					}
				})
				return
			}
			landFrom(srcNode.Name)()
		})
	})
	// Watchdog: a queued request whose last source dies would otherwise
	// wait forever. Re-route through the fallback paths if that happens.
	var watch func()
	watch = func() {
		if started || abandoned || st.stale(k, att) || !node.Alive {
			return
		}
		if len(st.liveHolders(f, node.ID)) == 0 {
			abandoned = true
			st.stageOne(k, att, f, node, onArrive)
			return
		}
		st.eng.Schedule(time.Second, watch)
	}
	st.eng.Schedule(time.Second, watch)
}

// pickSource returns the live holder of f (≠dest) with the least outbound
// load under maxLoad, or -1.
func (st *state) pickSource(f storage.FileID, dest, maxLoad int) int {
	best, bestLoad := -1, maxLoad
	for _, h := range st.reps.Holders(f) {
		if h == dest || h == st.pool.Manager.ID {
			continue
		}
		w := st.workerByID(h)
		if w == nil || !w.Alive {
			continue
		}
		if load := st.gov.Outbound(h); load < bestLoad {
			best, bestLoad = h, load
		}
	}
	return best
}

// transferDone frees governor capacity (queued transfers retry inside).
func (st *state) transferDone(src int) {
	st.gov.Done(src)
}

// ---- execution ----

// startExec charges startup + imports, then occupies the core for the
// compute time.
func (st *state) startExec(k dag.Key, att int) {
	if st.stale(k, att) {
		return
	}
	node := st.node(k)
	if node == nil || !node.Alive {
		return
	}
	spec := st.wl.Graph.Task(k).Spec.(*core.SimSpec)

	startup := st.startupCost(node)
	compute := spec.Compute
	if node.Speed > 0 && node.Speed != 1 {
		compute = time.Duration(float64(compute) / node.Speed)
	}
	total := startup + compute
	st.execing[k] = true
	if st.cfg.RecordTrace {
		st.execAt[k] = st.eng.Now()
	}
	st.record(obs.Event{Type: obs.EvTaskStart, Task: string(k),
		Worker: node.Name, Attempt: att - 1})
	st.eng.Schedule(total, func() {
		if st.stale(k, att) || !node.Alive {
			return
		}
		delete(st.execing, k)
		st.res.BusyPerWorker[node.ID-1] += total
		st.res.TaskExec = append(st.res.TaskExec, total)
		if st.cfg.RecordTrace {
			st.res.Trace = append(st.res.Trace, TaskEvent{
				Key:      string(k),
				Worker:   node.ID,
				Attempt:  att,
				Dispatch: st.dispatchAt[k],
				Start:    st.execAt[k],
				End:      st.eng.Now(),
			})
		}
		st.record(obs.Event{Type: obs.EvTaskDone, Task: string(k),
			Worker: node.Name, Attempt: att - 1, Dur: total})
		st.completeOnWorker(k, att, node)
	})
}

// startupCost models §III.C / §IV.B: wrapper + interpreter for standard
// tasks, fork for function calls; imports per the hoisting policy.
func (st *state) startupCost(node *cluster.Node) time.Duration {
	importFS := st.cfg.ImportFS
	if importFS.Name == "" {
		if st.cfg.ImportsLocal {
			importFS = params.LocalDisk
		} else {
			importFS = params.VAST
		}
	}
	setup := func(d time.Duration) {
		st.record(obs.Event{Type: obs.EvLibrarySetup, Worker: node.Name,
			Dur: d, Detail: importFS.Name})
	}
	if st.cfg.Scheduler == SchedDask {
		cost := params.DaskWorkerOverhead
		if !st.imported[node.ID] {
			st.imported[node.ID] = true
			imp := params.ImportCost(importFS)
			setup(imp)
			cost += imp
		}
		return cost
	}
	if !st.cfg.Serverless {
		return params.TaskStartup + params.ImportCost(importFS)
	}
	cost := params.FCInvokeOverhead
	if st.cfg.Hoist {
		if !st.imported[node.ID] {
			st.imported[node.ID] = true
			imp := params.ImportCost(importFS)
			setup(imp)
			cost += imp
		}
	} else {
		cost += params.ImportCost(importFS)
	}
	return cost
}

// completeOnWorker stores the output locally, then routes the result per
// the data-flow model and retires the task at the manager.
func (st *state) completeOnWorker(k dag.Key, att int, node *cluster.Node) {
	spec := st.wl.Graph.Task(k).Spec.(*core.SimSpec)
	out := core.OutputFileID(k)
	if spec.OutputSize > 0 {
		if err := node.Disk.Put(out, spec.OutputSize); err != nil {
			st.res.DiskFailures++
			st.failNode(node)
			return
		}
		st.bumpPeak(node)
		st.reps.Add(out, node.ID)
	}
	node.Release(1)

	retire := func() {
		st.mgrOp(st.collectCost(), func() {
			if st.stale(k, att) {
				return
			}
			st.retire(k)
		})
	}
	if st.cfg.Flow == FlowManager && spec.OutputSize > 0 {
		// Output streams back to the manager before the task retires.
		st.net.Transfer(node.EP, st.pool.Manager.EP, spec.OutputSize, func() {
			st.pool.Manager.Disk.Put(out, spec.OutputSize)
			st.reps.Add(out, st.pool.Manager.ID)
			retire()
		})
		return
	}
	// TaskVine: only a completion notice travels.
	st.net.Transfer(node.EP, st.pool.Manager.EP, params.ResultNoticeBytes, func() { retire() })
}

// retire finalizes a completed task at the manager.
func (st *state) retire(k dag.Key) {
	delete(st.dispatched, k)
	delete(st.assigned, k)
	if st.tracker.State(k) != dag.Running {
		return // rolled back by recovery while the notice was in flight
	}
	newlyReady, err := st.tracker.Complete(k)
	if err != nil {
		return
	}
	for _, r := range newlyReady {
		st.readyAt[r] = st.eng.Now()
	}
	st.res.TasksDone++
	// Garbage-collect inputs this completion released (first run only; a
	// recovery re-run consumes inputs whose refs were already returned).
	if !st.retired[k] {
		st.retired[k] = true
		spec := st.wl.Graph.Task(k).Spec.(*core.SimSpec)
		for _, f := range st.inputFiles(k, spec) {
			st.refs[f]--
			if st.refs[f] <= 0 {
				st.evict(f)
			}
		}
	}
	if st.tracker.State(st.wl.Root) == dag.Done && st.tracker.AllDone() {
		st.finish()
		return
	}
	if st.tracker.State(st.wl.Root) == dag.Done {
		// Root result exists; remaining tasks are re-runs whose outputs
		// nobody needs anymore. Declare success.
		st.finish()
		return
	}
	st.schedule()
}

func (st *state) finish() {
	st.done = true
	st.res.Completed = true
	st.res.Runtime = st.eng.Now()
	st.takeSample()
}

// ---- failure handling ----

// failNode kills a worker (disk overflow) — same consequences as
// preemption.
func (st *state) failNode(node *cluster.Node) {
	st.pool.Preempt(node)
	st.onPreempt(node)
}

// onPreempt handles the loss of a worker.
func (st *state) onPreempt(node *cluster.Node) {
	if st.done {
		return
	}
	st.res.Preempted++
	st.record(obs.Event{Type: obs.EvWorkerLost, Worker: node.Name})

	// Requeue its in-flight tasks.
	for k, nid := range st.assigned {
		if nid != node.ID {
			continue
		}
		st.abandon(k)
		st.attempt[k]++ // invalidate outstanding callbacks
		if st.tracker.State(k) == dag.Running {
			st.tracker.Requeue(k)
			st.readyAt[k] = st.eng.Now()
			st.res.TasksRerun++
			st.record(obs.Event{Type: obs.EvTaskRetry, Task: string(k),
				Worker: node.Name, Attempt: st.attempt[k] - 1, Detail: "worker lost"})
		}
	}

	// Replicas on the node are gone; recover lost outputs that are still
	// needed by re-running their producers.
	orphaned := st.reps.DropNode(node.ID)
	var lost []dag.Key
	for _, f := range orphaned {
		k, ok := keyOfOutput(f)
		if !ok {
			continue // dataset files persist on the shared FS
		}
		if st.pool.Manager.Disk.Has(f) {
			continue // manager copy survives (Work Queue mode)
		}
		if st.tracker.State(k) != dag.Done {
			continue
		}
		if !st.outputStillNeeded(k) {
			continue
		}
		lost = append(lost, k)
	}
	if len(lost) > 0 {
		st.applyInvalidation(lost)
	}
	st.schedule()
}

// reviveProducer re-runs a Done task whose output vanished (preemption or
// post-consumption garbage collection) and is needed again.
func (st *state) reviveProducer(prod dag.Key) {
	if st.tracker.State(prod) != dag.Done {
		return
	}
	st.applyInvalidation([]dag.Key{prod})
	st.schedule()
}

// applyInvalidation rolls back the given Done tasks in the tracker and
// aborts any in-flight dispatch of tasks the rollback touched.
func (st *state) applyInvalidation(lost []dag.Key) {
	changed, err := st.tracker.Invalidate(lost)
	if err != nil {
		return
	}
	st.res.TasksRerun += len(lost)
	for _, k := range lost {
		st.readyAt[k] = st.eng.Now() // rolled back to re-run; wait clock restarts
		st.record(obs.Event{Type: obs.EvTaskRetry, Task: string(k),
			Attempt: st.attempt[k], Detail: "output lost"})
	}
	for _, k := range changed {
		// Any rolled-back task that was in flight must abandon its
		// dispatch and return its core.
		if st.assigned[k] != 0 {
			st.attempt[k]++
			if n := st.node(k); n != nil && n.Alive {
				n.Release(1)
			}
			st.abandon(k)
		}
	}
}

// evict removes a no-longer-needed file from every worker cache (dataset
// files persist on the shared FS; the manager's copies persist in Work
// Queue mode).
func (st *state) evict(f storage.FileID) {
	size := st.reps.Size(f)
	for _, h := range st.reps.Holders(f) {
		if h == st.pool.Manager.ID {
			continue
		}
		if w := st.workerByID(h); w != nil {
			w.Disk.Del(f)
			st.record(obs.Event{Type: obs.EvCacheEvict, Worker: w.Name,
				Bytes: int64(size), Detail: string(f)})
		}
		st.reps.Remove(f, h)
	}
}

// outputStillNeeded reports whether a done task's output feeds any unfinished
// dependent (or is the workflow root).
func (st *state) outputStillNeeded(k dag.Key) bool {
	if k == st.wl.Root {
		return true
	}
	for _, d := range st.wl.Graph.Dependents(k) {
		if st.tracker.State(d) != dag.Done {
			return true
		}
	}
	return false
}

func keyOfOutput(f storage.FileID) (dag.Key, bool) {
	s := string(f)
	if len(s) > 4 && s[:4] == "out:" {
		return dag.Key(s[4:]), true
	}
	return "", false
}

// ---- helpers ----

func (st *state) node(k dag.Key) *cluster.Node {
	id, ok := st.assigned[k]
	if !ok {
		return nil
	}
	return st.workerByID(id)
}

// liveHolders lists live worker nodes (≠exclude) holding f.
func (st *state) liveHolders(f storage.FileID, exclude int) []int {
	var out []int
	for _, h := range st.reps.Holders(f) {
		if h == exclude || h == st.pool.Manager.ID {
			continue
		}
		if w := st.workerByID(h); w != nil && w.Alive {
			out = append(out, h)
		}
	}
	return out
}

func (st *state) workerByID(id int) *cluster.Node {
	if id <= 0 || id > len(st.pool.Workers) {
		return nil
	}
	return st.pool.Workers[id-1]
}

func (st *state) bumpPeak(node *cluster.Node) {
	i := node.ID - 1
	if u := node.Disk.Used(); u > st.res.PeakCachePerWorker[i] {
		st.res.PeakCachePerWorker[i] = u
	}
}

func (st *state) finishStats() {
	st.res.TransferMatrix = st.net.Transferred
	mgr := st.pool.Manager.EP
	st.res.ManagerMoved = mgr.BytesSent + mgr.BytesReceived
	var max units.Bytes
	for src, row := range st.net.Transferred {
		if src == st.fs.EP.Name {
			continue
		}
		for _, b := range row {
			if b > max {
				max = b
			}
		}
	}
	st.res.MaxPairBytes = max

	// Project the run's counters into the shared observability schema.
	snap := &st.res.Snapshot
	snap.TasksDone = st.res.TasksDone
	snap.Retries = st.res.TasksRerun
	snap.WorkersLost = st.res.Preempted
	snap.PeerTransfers = st.res.PeerCount
	snap.ManagerTransfers = st.res.ManagerCount
	snap.DiskFailures = st.res.DiskFailures
	snap.FSReadBytes = int64(st.res.FSReadBytes)
	fsName := st.fs.EP.Name
	mgrName := st.pool.Manager.Name
	for src, row := range st.net.Transferred {
		for dst, b := range row {
			switch {
			case src == fsName || dst == fsName:
				// shared-FS traffic, counted via FSReadBytes
			case src == mgrName || dst == mgrName:
				snap.ManagerBytes += int64(b)
			default:
				snap.PeerBytes += int64(b)
			}
		}
	}
	for _, p := range st.res.PeakCachePerWorker {
		if int64(p) > snap.CacheHighWater {
			snap.CacheHighWater = int64(p)
		}
	}
}
