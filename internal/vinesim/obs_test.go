package vinesim

import (
	"testing"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/units"
)

// traceRun executes one stack-4 run with a recorder attached and a burst
// of preemptions so the trace exercises retries and worker loss.
func traceRun(t *testing.T) (*Result, []obs.Event) {
	t.Helper()
	cfg := quietConfig(4, 3)
	cfg.PreemptFraction = 0.3
	cfg.PreemptWindow = 30 * time.Second
	rec := obs.NewRecorder()
	cfg.Recorder = rec
	res := Run(cfg, tinyWorkload(48, 2*time.Second, 5*units.MB))
	if !res.Completed {
		t.Fatalf("run failed: %s", res.Failure)
	}
	return res, rec.Events()
}

func TestRecorderTraceRenders(t *testing.T) {
	res, events := traceRun(t)
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}

	// Every plane-agnostic renderer must produce a non-empty figure.
	pts := obs.Timeline(events, time.Second)
	if len(pts) == 0 {
		t.Fatal("empty timeline")
	}
	final := pts[len(pts)-1]
	if final.Done < res.TasksDone {
		t.Fatalf("timeline done %d < result %d", final.Done, res.TasksDone)
	}
	if final.Running != 0 || final.Waiting < 0 {
		t.Fatalf("timeline did not drain: %+v", final)
	}

	matrix := obs.TransferMatrix(events)
	if len(matrix) == 0 {
		t.Fatal("empty transfer matrix")
	}
	peer := false
	for src, row := range matrix {
		if src == "manager" {
			continue
		}
		for dst := range row {
			if dst != "manager" {
				peer = true
			}
		}
	}
	if !peer {
		t.Fatal("stack 4 trace shows no peer transfers")
	}

	occ := obs.Occupancy(events, time.Second)
	if len(occ.Workers) == 0 {
		t.Fatal("empty occupancy")
	}

	// Counters surfaced in the shared snapshot must agree with the
	// legacy result fields.
	s := res.Snapshot
	if s.TasksDone != res.TasksDone || s.Retries != res.TasksRerun ||
		s.WorkersLost != res.Preempted || s.PeerTransfers != res.PeerCount ||
		s.ManagerTransfers != res.ManagerCount || s.FSReadBytes != int64(res.FSReadBytes) {
		t.Fatalf("snapshot %+v disagrees with result counters", s)
	}
	if s.PeerTransfers > 0 && s.PeerBytes == 0 {
		t.Fatal("peer transfers recorded but no peer bytes attributed")
	}
}

func TestRecorderDoesNotPerturbRun(t *testing.T) {
	cfg := quietConfig(3, 2)
	plain := Run(cfg, tinyWorkload(24, time.Second, units.MB))

	traced := cfg
	traced.Recorder = obs.NewRecorder()
	withRec := Run(traced, tinyWorkload(24, time.Second, units.MB))

	if plain.Runtime != withRec.Runtime || plain.TasksDone != withRec.TasksDone {
		t.Fatalf("tracing changed the simulation: %v/%d vs %v/%d",
			plain.Runtime, plain.TasksDone, withRec.Runtime, withRec.TasksDone)
	}
}

func TestRecorderTraceDeterministic(t *testing.T) {
	_, a := traceRun(t)
	_, b := traceRun(t)
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// benchRun is one Table-1-class stack-4 run, with or without tracing —
// the pair bounds the recorder's overhead on simulation throughput.
func benchRun(b *testing.B, traced bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := StackConfig(4, 4, 4, 7)
		cfg.PreemptFraction = 0
		cfg.StartupSpread = 0
		cfg.Horizon = time.Hour
		if traced {
			cfg.Recorder = obs.NewRecorder()
		}
		res := Run(cfg, tinyWorkload(96, time.Second, units.MB))
		if !res.Completed {
			b.Fatalf("run failed: %s", res.Failure)
		}
	}
}

func BenchmarkRunUntraced(b *testing.B) { benchRun(b, false) }
func BenchmarkRunTraced(b *testing.B)   { benchRun(b, true) }
