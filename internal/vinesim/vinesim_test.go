package vinesim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/core"
	"hepvine/internal/dag"
	"hepvine/internal/params"
	"hepvine/internal/storage"
	"hepvine/internal/units"
)

// tinyWorkload builds an n-processor map + binary-reduce workload with
// fixed compute time, for fast deterministic tests.
func tinyWorkload(n int, compute time.Duration, outSize units.Bytes) *core.Workload {
	g := dag.NewGraph()
	files := make(map[storage.FileID]units.Bytes)
	keys := make([]dag.Key, n)
	for i := 0; i < n; i++ {
		k := dag.Key(fmt.Sprintf("p%d", i))
		f := storage.FileID(fmt.Sprintf("ds:tiny-%d", i))
		files[f] = 10 * units.MB
		g.MustAdd(&dag.Task{Key: k, Category: "processor", Spec: &core.SimSpec{
			Compute: compute, Inputs: []storage.FileID{f}, OutputSize: outSize,
		}})
		keys[i] = k
	}
	root, err := dag.TreeReduce(g, "acc", keys, 2, func(level, index int, inputs []dag.Key) *dag.Task {
		return &dag.Task{Category: "accumulate", Spec: &core.SimSpec{
			Compute: compute / 4, OutputSize: outSize,
		}}
	})
	if err != nil {
		panic(err)
	}
	if err := g.Finalize(); err != nil {
		panic(err)
	}
	return &core.Workload{Name: "tiny", Graph: g, Root: root, DatasetFiles: files}
}

func quietConfig(stack, workers int) Config {
	c := StackConfig(stack, workers, 4, 7)
	c.PreemptFraction = 0
	c.StartupSpread = 0
	c.Horizon = time.Hour
	return c
}

func TestTinyRunCompletes(t *testing.T) {
	wl := tinyWorkload(16, 2*time.Second, units.MB)
	res := Run(quietConfig(4, 2), wl)
	if !res.Completed {
		t.Fatalf("failed: %s", res.Failure)
	}
	if res.TasksDone != wl.TaskCount() {
		t.Fatalf("done %d of %d", res.TasksDone, wl.TaskCount())
	}
	if res.Runtime <= 0 {
		t.Fatal("no runtime")
	}
	// 16 tasks of 2s on 8 cores is at least 4s of compute.
	if res.Runtime < 4*time.Second {
		t.Fatalf("runtime %v implausibly fast", res.Runtime)
	}
}

func TestDeterminism(t *testing.T) {
	wl1 := tinyWorkload(24, time.Second, units.MB)
	wl2 := tinyWorkload(24, time.Second, units.MB)
	r1 := Run(quietConfig(4, 3), wl1)
	r2 := Run(quietConfig(4, 3), wl2)
	if r1.Runtime != r2.Runtime {
		t.Fatalf("non-deterministic: %v vs %v", r1.Runtime, r2.Runtime)
	}
	if r1.TasksDone != r2.TasksDone || r1.PeerCount != r2.PeerCount {
		t.Fatal("counters differ across identical runs")
	}
}

func TestStackOrdering(t *testing.T) {
	// The paper's headline (Table I): each stack upgrade is at least as
	// fast, and serverless is much faster than manager-routed standard
	// tasks. Use enough small tasks that overheads dominate.
	wl := tinyWorkload(300, 500*time.Millisecond, 20*units.MB)
	runtimes := make([]time.Duration, 5)
	for s := 1; s <= 4; s++ {
		res := Run(quietConfig(s, 4), tinyWorkload(300, 500*time.Millisecond, 20*units.MB))
		if !res.Completed {
			t.Fatalf("stack %d failed: %s", s, res.Failure)
		}
		runtimes[s] = res.Runtime
	}
	_ = wl
	if runtimes[3] >= runtimes[1] {
		t.Fatalf("TaskVine (%v) not faster than Work Queue (%v)", runtimes[3], runtimes[1])
	}
	if runtimes[4] >= runtimes[3] {
		t.Fatalf("function calls (%v) not faster than standard tasks (%v)", runtimes[4], runtimes[3])
	}
	if runtimes[1].Seconds()/runtimes[4].Seconds() < 2 {
		t.Fatalf("stack1/stack4 = %.2f, want > 2", runtimes[1].Seconds()/runtimes[4].Seconds())
	}
}

func TestPeerVsManagerDataFlow(t *testing.T) {
	// Fig. 7: with peer transfers intermediates move worker-to-worker;
	// with the Work Queue flow everything crosses the manager.
	mk := func() *core.Workload { return tinyWorkload(64, time.Second, 50*units.MB) }
	wq := Run(quietConfig(2, 4), mk())
	tv := Run(quietConfig(4, 4), mk())
	if !wq.Completed || !tv.Completed {
		t.Fatalf("runs failed: %q %q", wq.Failure, tv.Failure)
	}
	if wq.PeerCount != 0 {
		t.Fatalf("work queue did %d peer transfers", wq.PeerCount)
	}
	if tv.PeerCount == 0 {
		t.Fatal("taskvine did no peer transfers")
	}
	if tv.ManagerMoved >= wq.ManagerMoved/4 {
		t.Fatalf("manager still loaded under peers: %v vs %v", tv.ManagerMoved, wq.ManagerMoved)
	}
}

func TestTransferMatrixRecorded(t *testing.T) {
	res := Run(quietConfig(4, 3), tinyWorkload(32, time.Second, 30*units.MB))
	if !res.Completed {
		t.Fatal(res.Failure)
	}
	if len(res.TransferMatrix) == 0 {
		t.Fatal("no transfer matrix")
	}
	if res.MaxPairBytes <= 0 {
		t.Fatal("no pairwise max")
	}
}

func TestTimelineSamples(t *testing.T) {
	res := Run(quietConfig(4, 2), tinyWorkload(40, 2*time.Second, units.MB))
	if len(res.Samples) < 5 {
		t.Fatalf("only %d samples", len(res.Samples))
	}
	sawRunning := false
	for i := 1; i < len(res.Samples); i++ {
		if res.Samples[i].T < res.Samples[i-1].T {
			t.Fatal("samples out of order")
		}
		if res.Samples[i].Running > 0 {
			sawRunning = true
		}
	}
	if !sawRunning {
		t.Fatal("never observed running tasks")
	}
	last := res.Samples[len(res.Samples)-1]
	if last.Done != res.TasksDone {
		t.Fatalf("final sample done=%d, tasks done=%d", last.Done, res.TasksDone)
	}
}

func TestPerWorkerRecording(t *testing.T) {
	cfg := quietConfig(4, 3)
	cfg.RecordPerWorker = true
	res := Run(cfg, tinyWorkload(32, time.Second, 20*units.MB))
	if len(res.CacheSeries) != len(res.Samples) || len(res.ActiveTasks) != len(res.Samples) {
		t.Fatal("per-worker series misaligned")
	}
	var peak units.Bytes
	for _, p := range res.PeakCachePerWorker {
		if p > peak {
			peak = p
		}
	}
	if peak == 0 {
		t.Fatal("no cache usage recorded")
	}
}

func TestPreemptionRecovery(t *testing.T) {
	wl := tinyWorkload(200, 2*time.Second, units.MB)
	cfg := quietConfig(4, 6)
	cfg.PreemptFraction = 0.5 // aggressive: expect ~3 of 6 workers to die
	cfg.PreemptWindow = 10 * time.Second
	res := Run(cfg, wl)
	if !res.Completed {
		t.Fatalf("run did not survive preemption: %s", res.Failure)
	}
	if res.Preempted == 0 {
		t.Fatal("no preemption happened; test ineffective")
	}
	if res.TasksDone < wl.TaskCount() {
		t.Fatalf("done %d of %d", res.TasksDone, wl.TaskCount())
	}
}

func TestAllWorkersLostFailsFast(t *testing.T) {
	wl := tinyWorkload(60, 30*time.Second, units.MB)
	cfg := quietConfig(4, 2)
	cfg.PreemptFraction = 1.1 // every worker dies
	cfg.PreemptWindow = 30 * time.Second
	res := Run(cfg, wl)
	if res.Completed {
		t.Fatal("completed with every worker dead")
	}
	if !strings.Contains(res.Failure, "all workers lost") {
		t.Fatalf("failure = %q", res.Failure)
	}
	if res.Runtime >= cfg.Horizon {
		t.Fatal("did not fail fast")
	}
}

func TestDiskOverflowKillsWorkerButRunRecovers(t *testing.T) {
	// Outputs far larger than disks on ALL but impossible to hold on one:
	// mimic Fig. 11a at miniature scale: naive reduce pulls everything to
	// one node.
	g := dag.NewGraph()
	files := map[storage.FileID]units.Bytes{}
	var keys []dag.Key
	for i := 0; i < 12; i++ {
		k := dag.Key(fmt.Sprintf("p%d", i))
		f := storage.FileID(fmt.Sprintf("ds:o-%d", i))
		files[f] = units.MB
		g.MustAdd(&dag.Task{Key: k, Category: "processor", Spec: &core.SimSpec{
			Compute: time.Second, Inputs: []storage.FileID{f}, OutputSize: 200 * units.MB,
		}})
		keys = append(keys, k)
	}
	root, _ := dag.TreeReduce(g, "acc", keys, 0, func(level, index int, in []dag.Key) *dag.Task {
		return &dag.Task{Category: "accumulate", Spec: &core.SimSpec{Compute: time.Second, OutputSize: units.MB}}
	})
	g.Finalize()
	wl := &core.Workload{Name: "overflow", Graph: g, Root: root, DatasetFiles: files}

	cfg := quietConfig(4, 4)
	cfg.WorkerDisk = units.GBf(1.2) // 12 × 200MB staged to one node overflows
	res := Run(cfg, wl)
	if res.DiskFailures == 0 {
		t.Fatalf("expected a disk overflow (peak per worker: %v)", res.PeakCachePerWorker)
	}
}

func TestHoistingHelpsShortTasks(t *testing.T) {
	// Fig. 10: hoisting matters for fine-grained tasks, not long ones.
	short := func(hoist bool) time.Duration {
		cfg := quietConfig(4, 2)
		cfg.Hoist = hoist
		res := Run(cfg, apps.HoistSweep(200, 100*time.Millisecond, 5))
		if !res.Completed {
			t.Fatalf("sweep failed: %s", res.Failure)
		}
		return res.Runtime
	}
	withH, withoutH := short(true), short(false)
	if float64(withoutH)/float64(withH) < 1.5 {
		t.Fatalf("hoisting speedup for short tasks = %.2f, want > 1.5 (with %v, without %v)",
			float64(withoutH)/float64(withH), withH, withoutH)
	}

	long := func(hoist bool) time.Duration {
		cfg := quietConfig(4, 2)
		cfg.Hoist = hoist
		res := Run(cfg, apps.HoistSweep(40, 20*time.Second, 5))
		if !res.Completed {
			t.Fatalf("sweep failed: %s", res.Failure)
		}
		return res.Runtime
	}
	lw, lwo := long(true), long(false)
	if float64(lwo)/float64(lw) > 1.3 {
		t.Fatalf("hoisting speedup for long tasks = %.2f, want ≈1", float64(lwo)/float64(lw))
	}
}

func TestImportFSMatters(t *testing.T) {
	// Fig. 10's other axis: local imports beat shared-FS imports for
	// non-hoisted fine-grained calls.
	run := func(fs params.FS) time.Duration {
		cfg := quietConfig(4, 2)
		cfg.Hoist = false
		cfg.ImportFS = fs
		res := Run(cfg, apps.HoistSweep(200, 100*time.Millisecond, 5))
		if !res.Completed {
			t.Fatalf("failed: %s", res.Failure)
		}
		return res.Runtime
	}
	local, vast := run(params.LocalDisk), run(params.VAST)
	if local >= vast {
		t.Fatalf("local imports (%v) not faster than shared FS (%v)", local, vast)
	}
}

func TestDaskComparatorSlower(t *testing.T) {
	wl := func() *core.Workload { return tinyWorkload(200, time.Second, 5*units.MB) }
	vine := Run(quietConfig(4, 5), wl())
	dcfg := DaskConfig(5, 4, 7)
	dcfg.PreemptFraction = 0
	dcfg.StartupSpread = 0
	dcfg.Horizon = time.Hour
	dask := Run(dcfg, wl())
	if !vine.Completed || !dask.Completed {
		t.Fatalf("failures: %q %q", vine.Failure, dask.Failure)
	}
	if dask.Runtime <= vine.Runtime {
		t.Fatalf("dask (%v) not slower than taskvine (%v)", dask.Runtime, vine.Runtime)
	}
}

func TestDaskCrashesAtScale(t *testing.T) {
	dcfg := DaskConfig(100, 12, 7) // 1200 cores
	res := Run(dcfg, tinyWorkload(10, time.Second, units.MB))
	if res.Completed {
		t.Fatal("dask completed at crash scale")
	}
	if !strings.Contains(res.Failure, "crash") {
		t.Fatalf("failure = %q", res.Failure)
	}
}

func TestScalingReducesRuntime(t *testing.T) {
	mk := func() *core.Workload { return tinyWorkload(400, 2*time.Second, units.MB) }
	small := Run(quietConfig(4, 2), mk())
	big := Run(quietConfig(4, 8), mk())
	if !small.Completed || !big.Completed {
		t.Fatal("runs failed")
	}
	if big.Runtime >= small.Runtime {
		t.Fatalf("4x workers not faster: %v vs %v", big.Runtime, small.Runtime)
	}
}

func TestTransferCapRespected(t *testing.T) {
	// With cap 1, staging serializes per source; runtime grows vs cap 8.
	mk := func() *core.Workload { return tinyWorkload(64, 200*time.Millisecond, 200*units.MB) }
	cfg1 := quietConfig(4, 4)
	cfg1.TransferCap = 1
	cfg8 := quietConfig(4, 4)
	cfg8.TransferCap = 8
	r1, r8 := Run(cfg1, mk()), Run(cfg8, mk())
	if !r1.Completed || !r8.Completed {
		t.Fatalf("failures: %q %q", r1.Failure, r8.Failure)
	}
	// Both complete; cap 1 must not be faster by any meaningful margin.
	if float64(r1.Runtime) < float64(r8.Runtime)*0.8 {
		t.Fatalf("cap1 (%v) much faster than cap8 (%v)?", r1.Runtime, r8.Runtime)
	}
}

func TestStackConfigPresets(t *testing.T) {
	for s := 1; s <= 4; s++ {
		c := StackConfig(s, 10, 12, 1)
		if c.Workers != 10 || c.CoresPerWorker != 12 {
			t.Fatalf("stack %d shape wrong", s)
		}
	}
	c1 := StackConfig(1, 1, 1, 1)
	if c1.FS.Name != "hdfs" || c1.Flow != FlowManager || c1.Serverless {
		t.Fatalf("stack1 = %+v", c1)
	}
	c4 := StackConfig(4, 1, 1, 1)
	if c4.FS.Name != "vast" || c4.Flow != FlowPeer || !c4.Serverless || !c4.Hoist {
		t.Fatalf("stack4 = %+v", c4)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("stack 5 accepted")
		}
	}()
	StackConfig(5, 1, 1, 1)
}

func TestResultAccessors(t *testing.T) {
	res := Run(quietConfig(4, 2), tinyWorkload(16, time.Second, units.MB))
	if res.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
	if u := res.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("utilization = %v", u)
	}
	if len(res.TaskExec) != res.TasksDone {
		t.Fatalf("task exec records %d != done %d", len(res.TaskExec), res.TasksDone)
	}
}

func TestInvalidWorkloadRejected(t *testing.T) {
	g := dag.NewGraph()
	g.MustAdd(&dag.Task{Key: "x", Spec: "bogus"})
	g.Finalize()
	wl := &core.Workload{Name: "bad", Graph: g, Root: "x", DatasetFiles: map[storage.FileID]units.Bytes{}}
	res := Run(quietConfig(4, 1), wl)
	if res.Completed || res.Failure == "" {
		t.Fatal("invalid workload accepted")
	}
}

func TestHeterogeneitySlowsTail(t *testing.T) {
	// A heterogeneous pool has slow nodes; the critical-path tail grows
	// relative to a homogeneous pool of the same nominal capacity.
	mk := func(spread float64) time.Duration {
		cfg := quietConfig(4, 4)
		cfg.SpeedSpread = spread
		res := Run(cfg, tinyWorkload(200, 4*time.Second, units.MB))
		if !res.Completed {
			t.Fatalf("failed: %s", res.Failure)
		}
		return res.Runtime
	}
	homo, hetero := mk(0), mk(0.3)
	// Not a strict inequality theorem (fast nodes help too), but with a
	// reduction tail the slowest node usually binds; require the
	// heterogeneous run not to be dramatically faster.
	if float64(hetero) < float64(homo)*0.85 {
		t.Fatalf("heterogeneous (%v) much faster than homogeneous (%v)?", hetero, homo)
	}
}

func TestTraceRecording(t *testing.T) {
	cfg := quietConfig(4, 2)
	cfg.RecordTrace = true
	wl := tinyWorkload(20, time.Second, units.MB)
	res := Run(cfg, wl)
	if !res.Completed {
		t.Fatal(res.Failure)
	}
	if len(res.Trace) != res.TasksDone {
		t.Fatalf("trace has %d events for %d tasks", len(res.Trace), res.TasksDone)
	}
	for _, ev := range res.Trace {
		if ev.Worker < 1 || ev.Worker > 2 {
			t.Fatalf("bad worker %d", ev.Worker)
		}
		if !(ev.Dispatch <= ev.Start && ev.Start < ev.End) {
			t.Fatalf("event times out of order: %+v", ev)
		}
	}
	// Processor tasks run ~1s (±15% node speed); at least one trace event
	// must show that.
	sawLong := false
	for _, ev := range res.Trace {
		if ev.End-ev.Start >= 800*time.Millisecond {
			sawLong = true
		}
	}
	if !sawLong {
		t.Fatal("no trace event reflects the 1s compute")
	}
	// Off by default.
	res2 := Run(quietConfig(4, 2), tinyWorkload(20, time.Second, units.MB))
	if len(res2.Trace) != 0 {
		t.Fatal("trace recorded without RecordTrace")
	}
}

func TestDaskVsVineDeterminismAcrossSeeds(t *testing.T) {
	// Different seeds must change runtimes (workload sampling is live) but
	// never the qualitative ordering on an overhead-dominated workload.
	for _, seed := range []uint64{1, 2, 3} {
		wl := tinyWorkload(150, 500*time.Millisecond, units.MB)
		vcfg := quietConfig(4, 3)
		vcfg.Seed = seed
		vres := Run(vcfg, wl)
		dcfg := DaskConfig(3, 4, seed)
		dcfg.PreemptFraction = 0
		dcfg.StartupSpread = 0
		dcfg.Horizon = time.Hour
		dres := Run(dcfg, tinyWorkload(150, 500*time.Millisecond, units.MB))
		if !vres.Completed || !dres.Completed {
			t.Fatalf("seed %d: failures %q %q", seed, vres.Failure, dres.Failure)
		}
		if dres.Runtime <= vres.Runtime {
			t.Fatalf("seed %d: ordering flipped (dask %v vs vine %v)", seed, dres.Runtime, vres.Runtime)
		}
	}
}

func TestSampleIntervalRespected(t *testing.T) {
	cfg := quietConfig(4, 2)
	cfg.SampleEvery = 5 * time.Second
	res := Run(cfg, tinyWorkload(60, 2*time.Second, units.MB))
	if !res.Completed {
		t.Fatal(res.Failure)
	}
	for i := 1; i < len(res.Samples)-1; i++ { // final sample is at completion
		if d := res.Samples[i].T - res.Samples[i-1].T; d != 5*time.Second {
			t.Fatalf("sample gap %v", d)
		}
	}
}

func TestHorizonAborts(t *testing.T) {
	cfg := quietConfig(4, 1)
	cfg.Horizon = 3 * time.Second
	res := Run(cfg, tinyWorkload(500, 10*time.Second, units.MB))
	if res.Completed {
		t.Fatal("completed impossible workload")
	}
	if !strings.Contains(res.Failure, "horizon") {
		t.Fatalf("failure = %q", res.Failure)
	}
	if res.Runtime > 3*time.Second+time.Second {
		t.Fatalf("ran past horizon: %v", res.Runtime)
	}
}
