package vinesim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hepvine/internal/core"
	"hepvine/internal/obs"
	"hepvine/internal/randx"
	"hepvine/internal/sched"
	"hepvine/internal/storage"
	"hepvine/internal/units"
)

// TestLocalityPolicyMatchesReplicaTablePick is the adapter's regression
// oracle: placement through the shared sched.Locality policy must agree
// with core.ReplicaTable.PickWorker (the legacy simulator path, kept for
// exactly this comparison) on randomized replica tables and worker loads.
func TestLocalityPolicyMatchesReplicaTablePick(t *testing.T) {
	rng := randx.NewStream(99, 1)
	pol := sched.Locality()
	for trial := 0; trial < 2000; trial++ {
		nWorkers := 1 + int(rng.Uint64()%12)
		nFiles := int(rng.Uint64() % 8)
		reps := core.NewReplicaTable()
		var inputs []storage.FileID
		for i := 0; i < nFiles; i++ {
			f := storage.FileID(fmt.Sprintf("f%d", i))
			inputs = append(inputs, f)
			reps.SetSize(f, units.Bytes(rng.Uint64()%5)*100*units.MB)
			for n := 1; n <= nWorkers; n++ {
				if rng.Uint64()%3 == 0 {
					reps.Add(f, n)
				}
			}
		}
		var legacy []core.Candidate
		var cands []sched.Candidate
		for n := 1; n <= nWorkers; n++ {
			if rng.Uint64()%4 == 0 {
				continue // worker busy or dead
			}
			free := 1 + int(rng.Uint64()%8)
			legacy = append(legacy, core.Candidate{Node: n, FreeCores: free})
			cands = append(cands, sched.Candidate{
				ID: n, Cores: 8, FreeCores: free,
				LocalBytes: localBytes(reps, inputs, n),
			})
		}
		if len(legacy) == 0 {
			continue
		}
		want := reps.PickWorker(legacy, inputs)
		idx, _ := pol.Pick(&sched.Task{ID: "t", Cores: 1}, cands)
		if idx < 0 {
			t.Fatalf("trial %d: policy rejected all of %d candidates", trial, len(cands))
		}
		if got := cands[idx].ID; got != want {
			t.Fatalf("trial %d: locality policy chose node %d, legacy chose %d\ncands: %+v",
				trial, got, want, cands)
		}
	}
}

// TestPolicyNamesRunAndDiverge runs the tiny workload under every stock
// policy: each must complete, report queue waits, and emit one
// EvSchedDecision per dispatch carrying the policy name.
func TestPolicyNamesRunAndDiverge(t *testing.T) {
	for _, name := range sched.Names() {
		rec := obs.NewRecorder()
		cfg := quietConfig(4, 3)
		cfg.Policy = name
		cfg.Recorder = rec
		res := Run(cfg, tinyWorkload(24, time.Second, units.MB))
		if !res.Completed {
			t.Fatalf("policy %s failed: %s", name, res.Failure)
		}
		if res.QueueWaitCount == 0 {
			t.Fatalf("policy %s recorded no queue waits", name)
		}
		if res.MeanQueueWait() < 0 {
			t.Fatalf("policy %s negative mean wait", name)
		}
		decisions := 0
		for _, ev := range rec.Events() {
			if ev.Type != obs.EvSchedDecision {
				continue
			}
			decisions++
			if !strings.Contains(ev.Detail, "policy="+name) {
				t.Fatalf("policy %s decision detail %q", name, ev.Detail)
			}
		}
		if decisions != res.QueueWaitCount {
			t.Fatalf("policy %s: %d decisions vs %d waits", name, decisions, res.QueueWaitCount)
		}
	}
}

// TestDefaultPolicyIsLocality checks "" and "locality" produce identical
// runs, so existing configs keep their exact historical behaviour.
func TestDefaultPolicyIsLocality(t *testing.T) {
	base := quietConfig(4, 3)
	named := base
	named.Policy = "locality"
	r1 := Run(base, tinyWorkload(24, time.Second, units.MB))
	r2 := Run(named, tinyWorkload(24, time.Second, units.MB))
	if r1.Runtime != r2.Runtime || r1.PeerCount != r2.PeerCount {
		t.Fatalf("default differs from locality: %v/%d vs %v/%d",
			r1.Runtime, r1.PeerCount, r2.Runtime, r2.PeerCount)
	}
}

// TestUnknownPolicyFailsFast makes a config typo a loud failure, not a
// silent fallback to some other placement.
func TestUnknownPolicyFailsFast(t *testing.T) {
	cfg := quietConfig(4, 2)
	cfg.Policy = "bogus"
	res := Run(cfg, tinyWorkload(4, time.Second, units.MB))
	if res.Completed || !strings.Contains(res.Failure, "bogus") {
		t.Fatalf("expected unknown-policy failure, got completed=%v failure=%q",
			res.Completed, res.Failure)
	}
}
