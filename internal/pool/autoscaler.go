package pool

import (
	"fmt"
	"sync"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/params"
	"hepvine/internal/sched"
)

// Cluster is the manager surface the autoscaler reads: queue backlog,
// the metrics registry (for the queue-wait histogram), and the trace
// recorder. *vine.Manager satisfies it; tests substitute fakes.
type Cluster interface {
	QueueStats() []sched.QueueStats
	Metrics() *obs.Registry
	Recorder() *obs.Recorder
}

// Config bounds and tunes an Autoscaler. Zero values take the pinned
// defaults in internal/params.
type Config struct {
	// Min and Max bound the pool size. Min workers are launched at Start
	// and the pool never drains below it; Max caps growth.
	Min, Max int
	// Poll is the control-loop cadence.
	Poll time.Duration
	// Cooldown is the minimum spacing between scaling actions — the damper
	// that keeps one backlog burst from thrashing the pool.
	Cooldown time.Duration
	// TasksPerWorker is the target backlog per worker: the loop sizes the
	// pool toward ceil(backlog / TasksPerWorker) within [Min, Max].
	TasksPerWorker int
	// IdlePolls is how many consecutive under-target polls must pass
	// before one worker is drained — scale-down hysteresis.
	IdlePolls int
	// DrainGrace is the grace window handed to Provider.Preempt on
	// scale-down.
	DrainGrace time.Duration
	// WaitTarget, when >0, adds a latency trigger: a mean task queue wait
	// above it (over the last poll interval) grows the pool by one even
	// when the backlog target alone would not.
	WaitTarget time.Duration
}

func (c *Config) defaults() {
	if c.Min < 0 {
		c.Min = 0
	}
	if c.Max < c.Min {
		c.Max = c.Min
	}
	if c.Poll <= 0 {
		c.Poll = params.DefaultPoolPoll
	}
	if c.Cooldown <= 0 {
		c.Cooldown = params.DefaultPoolCooldown
	}
	if c.TasksPerWorker <= 0 {
		c.TasksPerWorker = params.DefaultPoolTasksPerWorker
	}
	if c.IdlePolls <= 0 {
		c.IdlePolls = params.DefaultPoolIdlePolls
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = params.DefaultDrainGrace
	}
}

// Autoscaler is the pool control loop: each poll it reads the summed
// queue backlog and the delta of the vine_task_queue_wait_seconds
// histogram, computes a desired size, and converges the provider toward
// it — growing in one cooldown-gated step, shrinking one graceful drain
// at a time after IdlePolls of sustained slack. On a steady backlog the
// desired size is constant, so the loop reaches it and goes quiet: no
// oscillation by construction.
type Autoscaler struct {
	mgr  Cluster
	prov Provider
	cfg  Config

	waitHist *obs.Histogram

	stopC chan struct{}
	doneC chan struct{}

	mu        sync.Mutex
	started   bool
	stopped   bool
	lastScale time.Time
	idle      int
	peak      int
	ups       int
	downs     int
	lastCount int64
	lastSum   float64
}

// NewAutoscaler builds the control loop; call Start to run it.
func NewAutoscaler(mgr Cluster, prov Provider, cfg Config) *Autoscaler {
	cfg.defaults()
	return &Autoscaler{
		mgr:      mgr,
		prov:     prov,
		cfg:      cfg,
		waitHist: mgr.Metrics().Histogram("vine_task_queue_wait_seconds"),
		stopC:    make(chan struct{}),
		doneC:    make(chan struct{}),
	}
}

// Start launches the Min floor and begins polling. Idempotent.
func (a *Autoscaler) Start() {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return
	}
	a.started = true
	a.mu.Unlock()
	for len(a.prov.List()) < a.cfg.Min {
		if _, err := a.prov.Launch(); err != nil {
			break
		}
	}
	a.mu.Lock()
	if n := len(a.prov.List()); n > a.peak {
		a.peak = n
	}
	a.mu.Unlock()
	go a.run()
}

// Stop halts the control loop. The pool is left at its current size;
// tear workers down through the provider.
func (a *Autoscaler) Stop() {
	a.mu.Lock()
	if !a.started || a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.mu.Unlock()
	close(a.stopC)
	<-a.doneC
}

func (a *Autoscaler) run() {
	defer close(a.doneC)
	t := time.NewTicker(a.cfg.Poll)
	defer t.Stop()
	for {
		select {
		case <-a.stopC:
			return
		case <-t.C:
			a.step(time.Now())
		}
	}
}

// step is one control-loop decision. Split from run so tests can drive
// it with a deterministic clock.
func (a *Autoscaler) step(now time.Time) {
	live := len(a.prov.List())
	backlog := 0
	for _, q := range a.mgr.QueueStats() {
		backlog += q.Pending
	}
	count, sum := a.waitHist.Count(), a.waitHist.Sum()

	a.mu.Lock()
	if live > a.peak {
		a.peak = live
	}
	var meanWait time.Duration
	if dc := count - a.lastCount; dc > 0 {
		meanWait = time.Duration((sum - a.lastSum) / float64(dc) * float64(time.Second))
	}
	a.lastCount, a.lastSum = count, sum

	desired := (backlog + a.cfg.TasksPerWorker - 1) / a.cfg.TasksPerWorker
	if a.cfg.WaitTarget > 0 && meanWait > a.cfg.WaitTarget && backlog > 0 && desired <= live {
		desired = live + 1
	}
	if desired < a.cfg.Min {
		desired = a.cfg.Min
	}
	if desired > a.cfg.Max {
		desired = a.cfg.Max
	}
	cool := a.lastScale.IsZero() || now.Sub(a.lastScale) >= a.cfg.Cooldown

	switch {
	case live < a.cfg.Min:
		// Floor repair (a drained or killed worker dropped the pool below
		// Min) ignores cooldown: the floor is a promise, not a target.
		a.idle = 0
		a.launchLocked(a.cfg.Min-live, a.cfg.Min, backlog, meanWait, "floor")
		a.lastScale = now
	case desired > live && cool:
		a.idle = 0
		a.launchLocked(desired-live, desired, backlog, meanWait, "up")
		a.lastScale = now
	case desired < live:
		a.idle++
		if a.idle >= a.cfg.IdlePolls && cool && live > a.cfg.Min {
			a.idle = 0
			a.downs++
			names := a.prov.List()
			victim := names[len(names)-1]
			a.mgr.Recorder().Emit(obs.Event{Type: obs.EvPoolScale, Attempt: live - 1,
				Detail: fmt.Sprintf("down: drain %s (backlog=%d live=%d)", victim, backlog, live)})
			a.prov.Preempt(victim, a.cfg.DrainGrace)
			a.lastScale = now
		}
	default:
		a.idle = 0
	}
	a.mu.Unlock()
}

// launchLocked grows the pool by n toward target size, emitting one
// EvPoolScale for the action.
func (a *Autoscaler) launchLocked(n, target, backlog int, wait time.Duration, why string) {
	a.ups++
	a.mgr.Recorder().Emit(obs.Event{Type: obs.EvPoolScale, Attempt: target,
		Detail: fmt.Sprintf("%s: +%d (backlog=%d wait=%v)", why, n, backlog, wait)})
	for i := 0; i < n; i++ {
		if _, err := a.prov.Launch(); err != nil {
			return
		}
	}
}

// Size reports the provider's current worker count.
func (a *Autoscaler) Size() int { return len(a.prov.List()) }

// Peak reports the largest pool size the loop has observed.
func (a *Autoscaler) Peak() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// ScaleEvents reports how many scale-up and scale-down actions fired.
func (a *Autoscaler) ScaleEvents() (ups, downs int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ups, a.downs
}
