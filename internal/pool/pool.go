// Package pool manages elastic, preemption-tolerant worker pools for the
// live engine: a Provider abstracts how workers are brought up and torn
// down (in-process goroutines today; a batch system or cloud API has the
// same surface), and an Autoscaler watches the manager's queue backlog
// and task queue-wait to grow and shrink the pool between configured
// bounds. Scale-down is always a graceful drain — the provider delivers
// a preemption notice with a grace window, the worker evacuates its
// sole-replica cache entries, and only a blown window falls back to the
// recovery ladder — so elasticity costs placement churn, not lost work.
//
// This is the opportunistic-cluster posture of the paper's §IV setup
// ("the preemption of up to 1% of workers in each run" on a campus
// HTCondor pool) turned into a first-class subsystem: the pool is
// expected to change size mid-run, and the engine is expected not to
// care.
package pool

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"hepvine/internal/vine"
)

// Provider brings workers up and down. Implementations must be safe for
// concurrent use; the Autoscaler calls them from its control loop.
type Provider interface {
	// Launch starts one worker and returns its name. The worker connects
	// to the manager on its own; Launch does not wait for registration.
	Launch() (string, error)
	// Preempt delivers a preemption notice with the given grace window to
	// the named worker — the graceful scale-down path. The worker drains
	// (finishes or abandons in-flight work, offloads sole-replica cache
	// entries) and exits within the window.
	Preempt(name string, grace time.Duration) error
	// List names the workers this provider currently has running, sorted.
	List() []string
}

// LocalProvider runs workers as in-process goroutines connected to a
// manager over loopback TCP — the Provider used by tests, benchmarks, and
// single-node deployments. Workers are named prefix0, prefix1, … in
// launch order, and a worker that exits (drained, killed, or stopped) is
// reaped from List automatically.
type LocalProvider struct {
	addr    string
	prefix  string
	options func(name string) []vine.Option

	mu      sync.Mutex
	next    int
	workers map[string]*vine.Worker
}

// NewLocalProvider returns a provider that connects workers to the
// manager at addr. options, if non-nil, supplies per-worker vine options
// (cache dir, cores, fault injector, preemptible attribute, …) by worker
// name; WithName is applied by the provider itself.
func NewLocalProvider(addr string, options func(name string) []vine.Option) *LocalProvider {
	return &LocalProvider{
		addr:    addr,
		prefix:  "p",
		options: options,
		workers: make(map[string]*vine.Worker),
	}
}

// Launch starts one in-process worker.
func (p *LocalProvider) Launch() (string, error) {
	p.mu.Lock()
	name := fmt.Sprintf("%s%d", p.prefix, p.next)
	p.next++
	p.mu.Unlock()

	opts := []vine.Option{vine.WithName(name)}
	if p.options != nil {
		opts = append(opts, p.options(name)...)
	}
	w, err := vine.NewWorker(p.addr, opts...)
	if err != nil {
		return "", fmt.Errorf("pool: launch %s: %w", name, err)
	}
	p.mu.Lock()
	p.workers[name] = w
	p.mu.Unlock()
	// Reap on exit so List reflects reality whether the worker drained
	// clean, blew its grace window, or was stopped out of band.
	go func() {
		<-w.Done()
		p.mu.Lock()
		if p.workers[name] == w {
			delete(p.workers, name)
		}
		p.mu.Unlock()
	}()
	return name, nil
}

// Preempt delivers a drain notice to the named worker.
func (p *LocalProvider) Preempt(name string, grace time.Duration) error {
	p.mu.Lock()
	w := p.workers[name]
	p.mu.Unlock()
	if w == nil {
		return fmt.Errorf("pool: preempt %s: no such worker", name)
	}
	w.Drain(grace)
	return nil
}

// List names the provider's live workers, sorted.
func (p *LocalProvider) List() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.workers))
	for name := range p.workers {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Worker exposes a launched worker by name (nil if gone) — used by tests
// and chaos wiring that need the in-process handle.
func (p *LocalProvider) Worker(name string) *vine.Worker {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.workers[name]
}

// StopAll hard-stops every live worker — teardown, not graceful drain.
func (p *LocalProvider) StopAll() {
	p.mu.Lock()
	ws := make([]*vine.Worker, 0, len(p.workers))
	for _, w := range p.workers {
		ws = append(ws, w)
	}
	p.mu.Unlock()
	for _, w := range ws {
		w.Stop()
	}
}
