package pool

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"hepvine/internal/obs"
	"hepvine/internal/sched"
)

// fakeCluster is a Cluster stub with a settable backlog.
type fakeCluster struct {
	mu      sync.Mutex
	pending int
	reg     *obs.Registry
	rec     *obs.Recorder
}

func newFakeCluster() *fakeCluster {
	return &fakeCluster{reg: obs.NewRegistry(), rec: obs.NewRecorder()}
}

func (f *fakeCluster) setBacklog(n int) {
	f.mu.Lock()
	f.pending = n
	f.mu.Unlock()
}

func (f *fakeCluster) QueueStats() []sched.QueueStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return []sched.QueueStats{{Name: "default", Pending: f.pending}}
}

func (f *fakeCluster) Metrics() *obs.Registry  { return f.reg }
func (f *fakeCluster) Recorder() *obs.Recorder { return f.rec }

// fakeProvider tracks names in memory; Preempt removes immediately.
type fakeProvider struct {
	mu    sync.Mutex
	next  int
	names []string
}

func (p *fakeProvider) Launch() (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	name := fmt.Sprintf("f%d", p.next)
	p.next++
	p.names = append(p.names, name)
	return name, nil
}

func (p *fakeProvider) Preempt(name string, grace time.Duration) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, n := range p.names {
		if n == name {
			p.names = append(p.names[:i], p.names[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("no worker %s", name)
}

func (p *fakeProvider) List() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.names...)
}

// drop removes one worker out of band — a preemption the autoscaler did
// not ask for.
func (p *fakeProvider) drop() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.names) > 0 {
		p.names = p.names[:len(p.names)-1]
	}
}

func testConfig() Config {
	return Config{
		Min: 1, Max: 8,
		Poll:           10 * time.Millisecond,
		Cooldown:       50 * time.Millisecond,
		TasksPerWorker: 4,
		IdlePolls:      3,
		DrainGrace:     time.Second,
	}
}

// The acceptance-criteria convergence property: a steady backlog produces
// one scale-up to the target size, then silence — no oscillation.
func TestAutoscalerConvergesOnSteadyBacklog(t *testing.T) {
	mgr, prov := newFakeCluster(), &fakeProvider{}
	a := NewAutoscaler(mgr, prov, testConfig())
	for len(prov.List()) < a.cfg.Min {
		prov.Launch()
	}
	mgr.setBacklog(12) // ceil(12/4) = 3 workers desired

	now := time.Now()
	for i := 0; i < 50; i++ {
		a.step(now)
		now = now.Add(100 * time.Millisecond) // every step past cooldown
	}
	if got := a.Size(); got != 3 {
		t.Fatalf("size = %d, want 3", got)
	}
	ups, downs := a.ScaleEvents()
	if ups != 1 || downs != 0 {
		t.Fatalf("scale events = %d up / %d down; steady backlog must scale once and settle", ups, downs)
	}
}

func TestAutoscalerScaleDownNeedsHysteresis(t *testing.T) {
	mgr, prov := newFakeCluster(), &fakeProvider{}
	a := NewAutoscaler(mgr, prov, testConfig())
	mgr.setBacklog(12)
	now := time.Now()
	for len(prov.List()) < a.cfg.Min {
		prov.Launch()
	}
	a.step(now)
	if a.Size() != 3 {
		t.Fatalf("setup: size = %d, want 3", a.Size())
	}

	// Backlog vanishes. Fewer than IdlePolls under-target polls must not
	// shrink the pool, even well past the cooldown.
	mgr.setBacklog(0)
	now = now.Add(time.Second)
	a.step(now)
	now = now.Add(time.Millisecond)
	a.step(now)
	if a.Size() != 3 {
		t.Fatalf("size = %d after 2 idle polls; scale-down before IdlePolls=3", a.Size())
	}

	// Sustained idleness drains one worker per action down to Min, never
	// two inside one cooldown window.
	for i := 0; i < 40 && a.Size() > 1; i++ {
		now = now.Add(30 * time.Millisecond)
		a.step(now)
	}
	if got := a.Size(); got != 1 {
		t.Fatalf("size = %d, want Min=1 after sustained idleness", got)
	}
	_, downs := a.ScaleEvents()
	if downs != 2 {
		t.Fatalf("downs = %d, want 2 (3 → 2 → 1)", downs)
	}
	if a.Peak() != 3 {
		t.Fatalf("peak = %d, want 3", a.Peak())
	}
}

func TestAutoscalerRepairsFloorIgnoringCooldown(t *testing.T) {
	mgr, prov := newFakeCluster(), &fakeProvider{}
	cfg := testConfig()
	cfg.Min, cfg.Cooldown = 2, time.Hour // cooldown can never elapse
	a := NewAutoscaler(mgr, prov, cfg)
	prov.Launch()
	prov.Launch()

	// Arm the cooldown with one ordinary scale-up first.
	now := time.Now()
	mgr.setBacklog(100)
	a.step(now)
	mgr.setBacklog(0)

	// Out-of-band preemptions take the pool below the floor.
	for a.Size() >= cfg.Min {
		prov.drop()
	}
	if a.Size() >= cfg.Min {
		t.Fatalf("setup: size %d not below Min %d", a.Size(), cfg.Min)
	}
	a.step(now.Add(2 * time.Millisecond))
	if a.Size() != cfg.Min {
		t.Fatalf("size = %d; floor repair must relaunch to Min=%d without waiting out the cooldown", a.Size(), cfg.Min)
	}
}

func TestAutoscalerWaitTargetTriggersGrowth(t *testing.T) {
	mgr, prov := newFakeCluster(), &fakeProvider{}
	cfg := testConfig()
	cfg.WaitTarget = 100 * time.Millisecond
	a := NewAutoscaler(mgr, prov, cfg)
	prov.Launch()
	mgr.setBacklog(2) // under the backlog target for 1 worker (4)

	now := time.Now()
	a.step(now)
	if a.Size() != 1 {
		t.Fatalf("size = %d; small backlog alone must not grow the pool", a.Size())
	}

	// Tasks are waiting long despite the small backlog: latency trigger.
	h := mgr.Metrics().Histogram("vine_task_queue_wait_seconds")
	h.Observe(0.5)
	h.Observe(0.7)
	a.step(now.Add(200 * time.Millisecond))
	if a.Size() != 2 {
		t.Fatalf("size = %d, want 2 after queue-wait breach", a.Size())
	}
}
