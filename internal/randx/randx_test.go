package randx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 equal values", same)
	}
}

func TestStreamsDiffer(t *testing.T) {
	a, b := NewStream(7, 1), NewStream(7, 2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint32() == b.Uint32() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different streams produced %d/100 equal values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(9)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormalMoments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("normal stddev = %v", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(4)
		if v < 0 {
			t.Fatalf("Exp returned negative %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Fatalf("exp mean = %v, want ~4", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	// Median of lognormal(mu, sigma) is exp(mu).
	r := New(17)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(1.0, 0.5)
	}
	below := 0
	target := math.Exp(1.0)
	for _, v := range vals {
		if v < target {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("lognormal median check: %.3f below exp(mu)", frac)
	}
}

func TestBoundedLogNormalClamps(t *testing.T) {
	r := New(19)
	for i := 0; i < 10000; i++ {
		v := r.BoundedLogNormal(0, 3, 0.5, 2)
		if v < 0.5 || v > 2 {
			t.Fatalf("bounded lognormal out of range: %v", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		if n == 0 {
			return true
		}
		p := New(seed).Perm(int(n))
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= int(n) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(23)
	xs := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	for _, x := range xs {
		sum += x
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(29)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	frac := float64(hits) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) hit rate %v", frac)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		v := r.Range(-2, 5)
		if v < -2 || v >= 5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
}
