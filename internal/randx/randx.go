// Package randx provides a small, deterministic random number generator and
// the sampling distributions the workload models need.
//
// All experiments in this repository must be reproducible from a seed, so we
// implement a self-contained PCG32-style generator rather than relying on the
// global math/rand state. The distributions (uniform, exponential, lognormal,
// bounded normal) cover the task-duration and event-kinematics models used by
// the DV3 and RS-TriPhoton workloads.
package randx

import "math"

// RNG is a deterministic PCG-XSH-RR 32-bit generator with a 64-bit state.
// The zero value is NOT valid; use New.
type RNG struct {
	state uint64
	inc   uint64

	// cached spare normal deviate for Box-Muller
	hasSpare bool
	spare    float64
}

const pcgMult = 6364136223846793005

// New returns a generator seeded with seed on stream 1.
func New(seed uint64) *RNG {
	return NewStream(seed, 1)
}

// NewStream returns a generator seeded with seed on an independent stream.
// Distinct streams with the same seed produce uncorrelated sequences, which
// lets concurrent simulation components each own a private RNG while staying
// reproducible. The seed and stream are pre-mixed with splitmix64 so small
// consecutive seeds (1, 2, 3, …) still give well-dispersed early outputs.
func NewStream(seed, stream uint64) *RNG {
	r := &RNG{inc: splitmix64(stream)<<1 | 1}
	r.state = 0
	r.Uint32()
	r.state += splitmix64(seed)
	r.Uint32()
	return r
}

// splitmix64 is the standard 64-bit finalizer used to spread seed entropy.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Uint32 returns the next 32 uniformly distributed bits.
func (r *RNG) Uint32() uint32 {
	old := r.state
	r.state = old*pcgMult + r.inc
	xorshifted := uint32(((old >> 18) ^ old) >> 27)
	rot := uint32(old >> 59)
	return (xorshifted >> rot) | (xorshifted << ((-rot) & 31))
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	return uint64(r.Uint32())<<32 | uint64(r.Uint32())
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("randx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform deviate in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Exp returns an exponential deviate with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return -mean * math.Log(1-u)
}

// Normal returns a normal deviate with the given mean and standard deviation
// using the Box-Muller transform.
func (r *RNG) Normal(mean, stddev float64) float64 {
	if r.hasSpare {
		r.hasSpare = false
		return mean + stddev*r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return mean + stddev*u*f
}

// LogNormal returns a lognormal deviate where the underlying normal has
// parameters mu and sigma. The task-duration distribution in Fig. 8 of the
// paper (most tasks between 1s and 10s with outliers on both sides) is
// modelled as lognormal.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// BoundedLogNormal samples a lognormal and clamps to [lo, hi].
func (r *RNG) BoundedLogNormal(mu, sigma, lo, hi float64) float64 {
	v := r.LogNormal(mu, sigma)
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
