package netsim

import (
	"testing"
	"time"

	"hepvine/internal/sim"
	"hepvine/internal/units"
)

func newNet() (*sim.Engine, *Network) {
	eng := sim.NewEngine()
	return eng, New(eng)
}

func TestSingleFlowTime(t *testing.T) {
	eng, n := newNet()
	a := n.AddEndpoint("a", units.MBps(100), units.MBps(100), 0)
	b := n.AddEndpoint("b", units.MBps(100), units.MBps(100), 0)
	var doneAt time.Duration
	n.Transfer(a, b, 200*units.MB, func() { doneAt = eng.Now() })
	eng.Run(0)
	if doneAt < 1990*time.Millisecond || doneAt > 2010*time.Millisecond {
		t.Fatalf("200MB at 100MB/s finished at %v, want ~2s", doneAt)
	}
}

func TestLatencyCharged(t *testing.T) {
	eng, n := newNet()
	a := n.AddEndpoint("a", units.MBps(100), units.MBps(100), 50*time.Millisecond)
	b := n.AddEndpoint("b", units.MBps(100), units.MBps(100), 50*time.Millisecond)
	var doneAt time.Duration
	n.Transfer(a, b, 100*units.MB, func() { doneAt = eng.Now() })
	eng.Run(0)
	want := 1100 * time.Millisecond // 1s transfer + 2x50ms latency
	if doneAt < want-10*time.Millisecond || doneAt > want+10*time.Millisecond {
		t.Fatalf("finished at %v, want ~%v", doneAt, want)
	}
}

func TestZeroSizeIsLatencyOnly(t *testing.T) {
	eng, n := newNet()
	a := n.AddEndpoint("a", units.MBps(1), units.MBps(1), 20*time.Millisecond)
	b := n.AddEndpoint("b", units.MBps(1), units.MBps(1), 30*time.Millisecond)
	var doneAt time.Duration
	n.Transfer(a, b, 0, func() { doneAt = eng.Now() })
	eng.Run(0)
	if doneAt != 50*time.Millisecond {
		t.Fatalf("zero-size done at %v", doneAt)
	}
}

func TestSharedEgressHalvesRate(t *testing.T) {
	eng, n := newNet()
	src := n.AddEndpoint("src", units.MBps(100), units.MBps(100), 0)
	d1 := n.AddEndpoint("d1", units.MBps(1000), units.MBps(1000), 0)
	d2 := n.AddEndpoint("d2", units.MBps(1000), units.MBps(1000), 0)
	var t1, t2 time.Duration
	n.Transfer(src, d1, 100*units.MB, func() { t1 = eng.Now() })
	n.Transfer(src, d2, 100*units.MB, func() { t2 = eng.Now() })
	eng.Run(0)
	// Two flows share 100MB/s egress: each gets 50MB/s → 2s each.
	for _, d := range []time.Duration{t1, t2} {
		if d < 1900*time.Millisecond || d > 2100*time.Millisecond {
			t.Fatalf("shared flows finished at %v/%v, want ~2s", t1, t2)
		}
	}
}

func TestRateRecoversAfterCompetitorFinishes(t *testing.T) {
	eng, n := newNet()
	src := n.AddEndpoint("src", units.MBps(100), units.MBps(100), 0)
	d1 := n.AddEndpoint("d1", units.MBps(1000), units.MBps(1000), 0)
	d2 := n.AddEndpoint("d2", units.MBps(1000), units.MBps(1000), 0)
	var big time.Duration
	n.Transfer(src, d1, 50*units.MB, nil) // finishes at 1s (50MB/s share)
	n.Transfer(src, d2, 150*units.MB, func() { big = eng.Now() })
	eng.Run(0)
	// Big flow: 1s at 50MB/s (50MB done), then 100MB at 100MB/s → ~2s total.
	if big < 1900*time.Millisecond || big > 2100*time.Millisecond {
		t.Fatalf("big flow finished at %v, want ~2s", big)
	}
}

func TestIngressBottleneck(t *testing.T) {
	eng, n := newNet()
	s1 := n.AddEndpoint("s1", units.MBps(1000), units.MBps(1000), 0)
	s2 := n.AddEndpoint("s2", units.MBps(1000), units.MBps(1000), 0)
	dst := n.AddEndpoint("dst", units.MBps(100), units.MBps(100), 0)
	var t1, t2 time.Duration
	n.Transfer(s1, dst, 100*units.MB, func() { t1 = eng.Now() })
	n.Transfer(s2, dst, 100*units.MB, func() { t2 = eng.Now() })
	eng.Run(0)
	for _, d := range []time.Duration{t1, t2} {
		if d < 1900*time.Millisecond || d > 2100*time.Millisecond {
			t.Fatalf("ingress-limited flows finished at %v/%v, want ~2s", t1, t2)
		}
	}
}

func TestByteConservation(t *testing.T) {
	eng, n := newNet()
	eps := make([]*Endpoint, 6)
	for i := range eps {
		eps[i] = n.AddEndpoint(string(rune('a'+i)), units.MBps(50), units.MBps(50), time.Millisecond)
	}
	total := units.Bytes(0)
	for i := 0; i < 20; i++ {
		src := eps[i%len(eps)]
		dst := eps[(i*3+1)%len(eps)]
		if src == dst {
			continue
		}
		size := units.Bytes((i + 1)) * units.MB
		total += size
		n.Transfer(src, dst, size, nil)
	}
	eng.Run(0)
	var sent, recv units.Bytes
	for _, ep := range eps {
		sent += ep.BytesSent
		recv += ep.BytesReceived
	}
	if sent != recv {
		t.Fatalf("sent %v != received %v", sent, recv)
	}
	// Allow ±1 byte per flow of float rounding.
	if diff := sent - total; diff > 64 || diff < -64 {
		t.Fatalf("moved %v, want %v", sent, total)
	}
	if n.ActiveFlows != 0 {
		t.Fatalf("flows still active: %d", n.ActiveFlows)
	}
}

func TestCancelStopsFlow(t *testing.T) {
	eng, n := newNet()
	a := n.AddEndpoint("a", units.MBps(100), units.MBps(100), 0)
	b := n.AddEndpoint("b", units.MBps(100), units.MBps(100), 0)
	done := false
	f := n.Transfer(a, b, 100*units.MB, func() { done = true })
	eng.Schedule(500*time.Millisecond, func() { f.Cancel() })
	eng.Run(0)
	if done {
		t.Fatal("cancelled flow completed")
	}
	// Half the bytes should have moved.
	if f.Done() < 45*units.MB || f.Done() > 55*units.MB {
		t.Fatalf("cancelled after %v, want ~50MB", f.Done())
	}
	if n.ActiveFlows != 0 {
		t.Fatalf("flows still active: %d", n.ActiveFlows)
	}
}

func TestTransferredMatrixAndPairwiseMax(t *testing.T) {
	eng, n := newNet()
	a := n.AddEndpoint("a", units.MBps(100), units.MBps(100), 0)
	b := n.AddEndpoint("b", units.MBps(100), units.MBps(100), 0)
	c := n.AddEndpoint("c", units.MBps(100), units.MBps(100), 0)
	n.Transfer(a, b, 10*units.MB, nil)
	n.Transfer(a, c, 30*units.MB, nil)
	eng.Run(0)
	src, dst, max := n.PairwiseMax()
	if src != "a" || dst != "c" {
		t.Fatalf("pairwise max = %s->%s", src, dst)
	}
	if max < 29*units.MB || max > 31*units.MB {
		t.Fatalf("pairwise max bytes = %v", max)
	}
	if got := n.Transferred["a"]["b"]; got < 9*units.MB || got > 11*units.MB {
		t.Fatalf("a->b recorded %v", got)
	}
}

func TestManyFlowsFinish(t *testing.T) {
	eng, n := newNet()
	const workers = 50
	mgr := n.AddEndpoint("mgr", units.Gbps(10), units.Gbps(10), time.Millisecond)
	done := 0
	for i := 0; i < workers; i++ {
		w := n.AddEndpoint(string(rune('A'+i%26))+string(rune('0'+i/26)), units.Gbps(1), units.Gbps(1), time.Millisecond)
		n.Transfer(mgr, w, 100*units.MB, func() { done++ })
	}
	eng.Run(0)
	if done != workers {
		t.Fatalf("completed %d/%d flows", done, workers)
	}
	// Manager egress 1.25GB/s over 5GB total → at least 4 seconds.
	if eng.Now() < 3*time.Second {
		t.Fatalf("fan-out finished suspiciously fast: %v", eng.Now())
	}
}
