package netsim

import (
	"fmt"
	"testing"
	"time"

	"hepvine/internal/sim"
	"hepvine/internal/units"
)

// BenchmarkManagerFanOut is the Work Queue stress shape: one manager NIC
// feeding hundreds of concurrent flows — the scenario the one-wake-event
// flow design exists for.
func BenchmarkManagerFanOut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		n := New(eng)
		mgr := n.AddEndpoint("mgr", units.Gbps(10), units.Gbps(10), time.Millisecond)
		done := 0
		for w := 0; w < 200; w++ {
			ep := n.AddEndpoint(fmt.Sprintf("w%d", w), units.Gbps(10), units.Gbps(10), time.Millisecond)
			for k := 0; k < 5; k++ {
				n.Transfer(mgr, ep, 40*units.MB, func() { done++ })
			}
		}
		eng.Run(0)
		if done != 1000 {
			b.Fatalf("completed %d flows", done)
		}
	}
}
