// Package netsim models network transfers between simulation endpoints as
// bandwidth-sharing flows.
//
// Topology: a star through a non-blocking core switch (the common shape of
// a campus cluster fabric), so the only capacity constraints are each
// endpoint's ingress and egress NIC rates. Every active flow at an endpoint
// receives an equal share of that endpoint's capacity; a flow's rate is the
// minimum of its source-egress share and destination-ingress share. This
// equal-share approximation of max-min fairness is what makes the Work
// Queue manager a visible bottleneck (hundreds of flows share one NIC,
// Fig. 7) while TaskVine peer transfers spread load across many worker NICs.
//
// Implementation notes, sized for Work Queue's pathology (thousands of
// concurrent flows on one manager NIC): progress is integrated exactly —
// every flow incident to an endpoint is settled and re-rated whenever that
// endpoint's flow set changes, which is pure arithmetic, no event-heap
// traffic. Each flow keeps exactly ONE pending wake event; a wake fires at
// the estimated finish (capped at pollInterval), settles, and either
// completes or re-arms. Rate increases therefore surface with at most
// pollInterval of lateness, and the heap never accumulates cancelled
// events — the quadratic churn a cancel-and-reschedule design suffers.
package netsim

import (
	"fmt"
	"time"

	"hepvine/internal/sim"
	"hepvine/internal/units"
)

// pollInterval bounds how late a flow may notice it already finished after
// its bandwidth share grew.
const pollInterval = time.Second

// Endpoint is a network-attached entity: a worker node, the manager, or a
// shared filesystem head. Capacity is split evenly among active flows in
// each direction.
type Endpoint struct {
	Name    string
	CapIn   units.BytesPerSec
	CapOut  units.BytesPerSec
	Latency time.Duration // one-way first-byte latency contributed by this endpoint

	in  map[*Flow]struct{}
	out map[*Flow]struct{}

	// Totals for heatmaps (Fig. 7).
	BytesSent     units.Bytes
	BytesReceived units.Bytes
}

// Flow is one in-flight transfer.
type Flow struct {
	Src, Dst *Endpoint
	Size     units.Bytes

	net        *Network
	done       units.Bytes // bytes moved as of lastAt
	unrecorded units.Bytes // bytes not yet flushed to the pairwise matrix
	rate       units.BytesPerSec
	lastAt     time.Duration
	wake       *sim.Event
	onComplete func()
	finished   bool
	cancelled  bool
}

// Rate reports the flow's current bandwidth share.
func (f *Flow) Rate() units.BytesPerSec { return f.rate }

// Done reports bytes transferred as of the last settlement.
func (f *Flow) Done() units.Bytes { return f.done }

// Network tracks endpoints and flows against a simulation engine.
type Network struct {
	eng       *sim.Engine
	endpoints []*Endpoint

	// Transferred[src][dst] accumulates bytes for pairwise heatmaps.
	Transferred map[string]map[string]units.Bytes

	// ActiveFlows counts in-flight transfers.
	ActiveFlows int
}

// New returns an empty network bound to the engine.
func New(eng *sim.Engine) *Network {
	return &Network{eng: eng, Transferred: make(map[string]map[string]units.Bytes)}
}

// AddEndpoint registers and returns a new endpoint.
func (n *Network) AddEndpoint(name string, capIn, capOut units.BytesPerSec, latency time.Duration) *Endpoint {
	ep := &Endpoint{
		Name: name, CapIn: capIn, CapOut: capOut, Latency: latency,
		in:  make(map[*Flow]struct{}),
		out: make(map[*Flow]struct{}),
	}
	n.endpoints = append(n.endpoints, ep)
	return ep
}

// Endpoints returns all registered endpoints in registration order.
func (n *Network) Endpoints() []*Endpoint { return n.endpoints }

// Transfer starts a flow of size bytes from src to dst and invokes
// onComplete when the last byte lands. Zero-size transfers complete after
// the path latency alone. The returned flow may be cancelled.
func (n *Network) Transfer(src, dst *Endpoint, size units.Bytes, onComplete func()) *Flow {
	if src == nil || dst == nil {
		panic("netsim: Transfer with nil endpoint")
	}
	lat := src.Latency + dst.Latency
	f := &Flow{Src: src, Dst: dst, Size: size, net: n, onComplete: onComplete}
	if size <= 0 || src == dst {
		// Local copy or pure-latency signal: charge latency only.
		n.eng.Schedule(lat, func() {
			if f.cancelled {
				return
			}
			f.finished = true
			if onComplete != nil {
				onComplete()
			}
		})
		return f
	}
	n.ActiveFlows++
	src.out[f] = struct{}{}
	dst.in[f] = struct{}{}
	// Transfer begins after the path latency.
	f.lastAt = n.eng.Now() + lat
	n.reRate(src)
	n.reRate(dst)
	f.scheduleWake(lat)
	return f
}

// reRate settles every flow incident to ep at the current time and assigns
// fresh equal-share rates. Pure arithmetic: wake events are left alone.
func (n *Network) reRate(ep *Endpoint) {
	now := n.eng.Now()
	for f := range ep.out {
		f.settle(now)
		f.rate = f.shareNow()
	}
	for f := range ep.in {
		f.settle(now)
		f.rate = f.shareNow()
	}
}

// shareNow computes the flow's current equal-share rate.
func (f *Flow) shareNow() units.BytesPerSec {
	out := share(f.Src.CapOut, len(f.Src.out))
	in := share(f.Dst.CapIn, len(f.Dst.in))
	if in < out {
		return in
	}
	return out
}

func share(cap units.BytesPerSec, nflows int) units.BytesPerSec {
	if nflows <= 0 {
		return cap
	}
	return cap / units.BytesPerSec(nflows)
}

// scheduleWake arms the flow's next settlement after extra delay (latency
// on the first segment).
func (f *Flow) scheduleWake(extra time.Duration) {
	remaining := f.Size - f.done
	est := f.rate.TimeFor(remaining) + time.Microsecond
	if est > pollInterval {
		est = pollInterval
	}
	ff := f
	f.wake = f.net.eng.Schedule(extra+est, func() { ff.onWake() })
}

// onWake settles progress and either completes or re-arms.
func (f *Flow) onWake() {
	if f.finished || f.cancelled {
		return
	}
	f.settle(f.net.eng.Now())
	if f.done >= f.Size {
		f.complete()
		return
	}
	f.scheduleWake(0)
}

// settle integrates progress at the current rate since the last settlement.
// Rates only change via reRate, which settles first, so integration is
// exact piecewise-linear.
func (f *Flow) settle(now time.Duration) {
	if now > f.lastAt && f.rate > 0 {
		moved := units.Bytes(float64(f.rate) * (now - f.lastAt).Seconds())
		if f.done+moved > f.Size {
			moved = f.Size - f.done
		}
		f.done += moved
		f.unrecorded += moved
		f.Src.BytesSent += moved
		f.Dst.BytesReceived += moved
	}
	if now > f.lastAt {
		f.lastAt = now
	}
}

func (f *Flow) complete() {
	f.finished = true
	f.detach()
	if f.onComplete != nil {
		// Fresh event so user code never runs inside another flow's wake.
		cb := f.onComplete
		f.net.eng.Schedule(0, cb)
	}
}

func (f *Flow) detach() {
	f.net.ActiveFlows--
	delete(f.Src.out, f)
	delete(f.Dst.in, f)
	if f.wake != nil {
		f.wake.Cancel()
		f.wake = nil
	}
	f.net.record(f.Src.Name, f.Dst.Name, f.unrecorded)
	f.unrecorded = 0
	f.net.reRate(f.Src)
	f.net.reRate(f.Dst)
}

// Cancel aborts a flow, accounting for the bytes already moved.
func (f *Flow) Cancel() {
	if f.finished || f.cancelled {
		return
	}
	f.cancelled = true
	f.settle(f.net.eng.Now())
	f.detach()
}

func (n *Network) record(src, dst string, b units.Bytes) {
	if b == 0 {
		return
	}
	m := n.Transferred[src]
	if m == nil {
		m = make(map[string]units.Bytes)
		n.Transferred[src] = m
	}
	m[dst] += b
}

// PairwiseMax reports the largest number of bytes moved between any ordered
// endpoint pair — the headline statistic of Fig. 7.
func (n *Network) PairwiseMax() (src, dst string, max units.Bytes) {
	for s, row := range n.Transferred {
		for d, b := range row {
			if b > max {
				src, dst, max = s, d, b
			}
		}
	}
	return src, dst, max
}

// String summarizes the network for debugging.
func (n *Network) String() string {
	return fmt.Sprintf("netsim{endpoints=%d active=%d}", len(n.endpoints), n.ActiveFlows)
}
