// Remote-data example: why the paper stages datasets onto facility storage
// instead of reading the wide-area XRootD federation every run (§IV.A:
// "it was impractical to rely on the wide area XROOTD federation to
// deliver data to each run").
//
// The same MET analysis runs twice:
//
//  1. reading columns directly from a remote xrootd server with injected
//     WAN latency per request, and
//  2. staging the files once to local disk, then reading locally.
//
// Column-selective access keeps the remote path usable (only the branches
// the analysis touches travel), but per-request WAN latency still loses to
// staged local reads for repeated analysis — the paper's §IV.A conclusion.
//
//	go run ./examples/remotedata [-wan 25ms] [-files 4] [-events 8000]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"time"

	"hepvine/internal/hist"
	"hepvine/internal/rootio"
	"hepvine/internal/xrootd"
)

func main() {
	wan := flag.Duration("wan", 25*time.Millisecond, "injected WAN latency per request")
	files := flag.Int("files", 4, "dataset files")
	events := flag.Int("events", 8000, "events per file")
	flag.Parse()
	if err := run(*wan, *files, *events); err != nil {
		log.Fatal(err)
	}
}

func run(wan time.Duration, nFiles, events int) error {
	remoteDir, err := os.MkdirTemp("", "federation-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(remoteDir)
	fmt.Printf("synthesizing %d files x %d events at the 'remote site'...\n", nFiles, events)
	paths, err := rootio.WriteDataset(remoteDir, rootio.DatasetSpec{
		Name: "FedData", Files: nFiles, EventsPerFile: events,
		Gen: rootio.GenOptions{Seed: 77},
	})
	if err != nil {
		return err
	}

	srv, err := xrootd.NewServer(remoteDir, wan)
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("xrootd server at %s (WAN latency %v per request)\n\n", srv.Addr(), wan)

	const chunkEvents = 1000
	metHist := func() *hist.Hist { return hist.New(hist.Reg(100, 0, 200, "met")) }

	// --- path 1: remote column reads over the federation ---
	start := time.Now()
	hRemote := metHist()
	client, err := xrootd.Dial(srv.Addr())
	if err != nil {
		return err
	}
	defer client.Close()
	for _, p := range paths {
		name := filepath.Base(p)
		n, _, err := client.Open(name)
		if err != nil {
			return err
		}
		for lo := int64(0); lo < n; lo += chunkEvents {
			hi := lo + chunkEvents
			if hi > n {
				hi = n
			}
			met, err := client.ReadFlat(name, "MET_pt", lo, hi)
			if err != nil {
				return err
			}
			hRemote.FillN(met)
		}
	}
	remoteTime := time.Since(start)
	st := srv.Stats()
	fmt.Printf("remote federation reads: %v (%d requests, %.1f MB moved — columns only)\n",
		remoteTime.Round(time.Millisecond), st.Reads+st.Opens, float64(st.BytesSent)/1e6)

	// --- path 2: stage whole files to the facility once, read locally ---
	localDir, err := os.MkdirTemp("", "staged-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(localDir)
	start = time.Now()
	var stagedBytes int64
	for _, p := range paths {
		dst := filepath.Join(localDir, filepath.Base(p))
		n, err := copyFile(p, dst)
		if err != nil {
			return err
		}
		stagedBytes += n
	}
	stageTime := time.Since(start)

	start = time.Now()
	hLocal := metHist()
	for _, p := range paths {
		rd, closer, err := rootio.Open(filepath.Join(localDir, filepath.Base(p)))
		if err != nil {
			return err
		}
		n := rd.NEvents()
		for lo := int64(0); lo < n; lo += chunkEvents {
			hi := lo + chunkEvents
			if hi > n {
				hi = n
			}
			met, err := rd.ReadFlat("MET_pt", lo, hi)
			if err != nil {
				closer.Close()
				return err
			}
			hLocal.FillN(met)
		}
		closer.Close()
	}
	localTime := time.Since(start)
	fmt.Printf("staged to facility:      %v staging (%.1f MB, whole files) + %v analysis\n",
		stageTime.Round(time.Millisecond), float64(stagedBytes)/1e6, localTime.Round(time.Millisecond))

	// Identical physics either way.
	for i := range hRemote.Counts {
		if hRemote.Counts[i] != hLocal.Counts[i] {
			return fmt.Errorf("remote and local disagree at bin %d", i)
		}
	}
	fmt.Println("\nvalidation: identical histograms from both paths ✓")
	runs := remoteTime.Seconds() / localTime.Seconds()
	fmt.Printf("one analysis pass over the WAN costs %.1fx the staged pass; after staging,\n", runs)
	fmt.Println("every re-run (and analyses iterate constantly, §I) reads at facility speed.")
	return nil
}

func copyFile(src, dst string) (int64, error) {
	in, err := os.Open(src)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	out, err := os.Create(dst)
	if err != nil {
		return 0, err
	}
	defer out.Close()
	return io.Copy(out, in)
}
