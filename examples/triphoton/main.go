// RS-TriPhoton example: the paper's second application — a search for a
// heavy resonance decaying to three photons — with the §IV.C reduction
// comparison run live: the same 8-dataset analysis executed twice on the
// TaskVine engine, once with the naive single-task-per-dataset reduction
// (Fig. 11a's shape) and once with a binary reduction tree (Fig. 11b),
// measuring the worker cache high-water mark of each.
//
//	go run ./examples/triphoton [-datasets 8] [-files 3] [-events 6000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/coffea"
	"hepvine/internal/daskvine"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

func main() {
	datasets := flag.Int("datasets", 8, "number of datasets")
	files := flag.Int("files", 3, "files per dataset")
	events := flag.Int("events", 6000, "events per file")
	flag.Parse()
	if err := run(*datasets, *files, *events); err != nil {
		log.Fatal(err)
	}
}

func run(nDatasets, nFiles, events int) error {
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(0)); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "triphoton-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	fmt.Printf("synthesizing %d datasets x %d files x %d events (with tri-photon signal)...\n",
		nDatasets, nFiles, events)
	datasets := make(map[string][]coffea.Chunk, nDatasets)
	for d := 0; d < nDatasets; d++ {
		name := fmt.Sprintf("EGamma-%02d", d)
		paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
			Name: name, Files: nFiles, EventsPerFile: events,
			Gen: rootio.GenOptions{Seed: uint64(100 + d), MeanPhot: 1.2, SignalFrac: 0.05},
		})
		if err != nil {
			return err
		}
		infos := make([]coffea.FileInfo, len(paths))
		for i, p := range paths {
			infos[i] = coffea.FileInfo{Path: p, NEvents: int64(events)}
		}
		chunks, err := coffea.Partition(name, infos, int64(events)/2)
		if err != nil {
			return err
		}
		datasets[name] = chunks
	}

	type outcome struct {
		label   string
		result  *coffea.HistSet
		elapsed time.Duration
		peak    int64
		stats   vine.ManagerStats
	}
	var outcomes []outcome

	for _, c := range []struct {
		label string
		fanIn int
	}{
		{"naive single-task reduce", 0},
		{"binary-tree reduce", 2},
	} {
		graph, root, err := coffea.BuildMultiDatasetGraph("rs-triphoton", datasets, coffea.GraphOptions{FanIn: c.fanIn})
		if err != nil {
			return err
		}
		mgr, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
		)
		if err != nil {
			return err
		}
		var ws []*vine.Worker
		for i := 0; i < 4; i++ {
			w, err := vine.NewWorker(mgr.Addr(),
				vine.WithName(fmt.Sprintf("w%d", i)),
				vine.WithCores(4),
			)
			if err != nil {
				mgr.Stop()
				return err
			}
			ws = append(ws, w)
		}
		if err := mgr.WaitForWorkers(4, 5*time.Second); err != nil {
			mgr.Stop()
			return err
		}
		start := time.Now()
		res, err := daskvine.Run(mgr, graph, root, daskvine.Options{Timeout: 5 * time.Minute})
		if err != nil {
			mgr.Stop()
			return fmt.Errorf("%s: %w", c.label, err)
		}
		elapsed := time.Since(start)
		var peak int64
		for _, w := range ws {
			if hw := int64(w.Stats().CacheHighWater); hw > peak {
				peak = hw
			}
		}
		outcomes = append(outcomes, outcome{c.label, res, elapsed, peak, mgr.Stats()})
		fmt.Printf("  %-26s %d tasks, %v, peak worker cache %.1f MB\n",
			c.label, graph.Len(), elapsed.Round(time.Millisecond), float64(peak)/1e6)
		for _, w := range ws {
			w.Stop()
		}
		mgr.Stop()
	}

	// Both reduction shapes must produce identical physics.
	a, b := outcomes[0].result, outcomes[1].result
	for _, name := range a.Names() {
		for i := range a.H[name].Counts {
			if math.Abs(a.H[name].Counts[i]-b.H[name].Counts[i]) > 1e-9 {
				return fmt.Errorf("reduction shapes disagree on %s bin %d", name, i)
			}
		}
	}
	fmt.Println("\nvalidation: both reduction shapes give identical results ✓")
	if outcomes[0].peak > 0 {
		fmt.Printf("peak worker cache: naive %.1f MB vs tree %.1f MB (%.1fx)\n",
			float64(outcomes[0].peak)/1e6, float64(outcomes[1].peak)/1e6,
			float64(outcomes[0].peak)/float64(outcomes[1].peak))
	}

	tri := b.H["triphoton_mass"]
	fmt.Printf("\ntri-photon invariant mass (%0.f candidates):\n\n", tri.InRangeSum())
	coarse, err := tri.Rebin(4)
	if err != nil {
		return err
	}
	fmt.Println(coarse.ASCII(50))
	return nil
}
