// Systematics example: the DV3-Huge topology (Fig. 15) at laptop scale on
// the live engine — "the same 1.2TB dataset ... comprised of 185K tasks
// performing more extensive computation on the same data".
//
// Structure: preprocessing tasks skim each chunk once; N systematic
// variations (jet-energy-scale shifts) each re-analyze every skim; each
// variation accumulates into its own histogram; a final merge combines
// them. The graph is built with generic TaskTemplates and executed through
// daskvine.RunGeneric — preprocess outputs are cached on workers and feed
// all N variations via locality scheduling and peer transfers, never
// recomputed.
//
//	go run ./examples/systematics [-chunks 12] [-variations 8] [-events 4000]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/hist"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

func main() {
	chunks := flag.Int("chunks", 12, "dataset chunks (preprocessing width)")
	variations := flag.Int("variations", 8, "systematic variations")
	events := flag.Int("events", 4000, "events per chunk")
	flag.Parse()
	if err := run(*chunks, *variations, *events); err != nil {
		log.Fatal(err)
	}
}

// The skim format: float32 jet pts of selected jets, flattened.
func encodeSkim(pts []float64) []byte {
	out := make([]byte, 4*len(pts))
	for i, v := range pts {
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(float32(v)))
	}
	return out
}

func decodeSkim(data []byte) []float64 {
	out := make([]float64, len(data)/4)
	for i := range out {
		out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:])))
	}
	return out
}

// registerLibrary installs the three analysis stages.
func registerLibrary() error {
	return vine.RegisterLibrary(&vine.Library{
		Name:  "sysvar",
		Setup: func() (any, error) { return nil, nil },
		Funcs: map[string]vine.Function{
			// preprocess: chunk file → skim of selected-jet pts.
			"preprocess": func(c *vine.Call) error {
				path, err := c.InputPath("data")
				if err != nil {
					return err
				}
				rd, closer, err := rootio.Open(path)
				if err != nil {
					return err
				}
				defer closer.Close()
				var lo, hi int64
				if _, err := fmt.Sscanf(string(c.Args), "%d-%d", &lo, &hi); err != nil {
					return fmt.Errorf("bad preprocess args %q", c.Args)
				}
				jets, err := rd.ReadJagged("Jet_pt", lo, hi)
				if err != nil {
					return err
				}
				etas, err := rd.ReadJagged("Jet_eta", lo, hi)
				if err != nil {
					return err
				}
				var sel []float64
				for i, pt := range jets.Values {
					if pt > 30 && math.Abs(etas.Values[i]) < 2.4 {
						sel = append(sel, pt)
					}
				}
				c.SetOutput("skim", encodeSkim(sel))
				return nil
			},
			// variation: skim + JES factor → partial histogram.
			"variation": func(c *vine.Call) error {
				var factor float64
				if _, err := fmt.Sscanf(string(c.Args), "%g", &factor); err != nil {
					return fmt.Errorf("bad variation args %q", c.Args)
				}
				h := hist.New(hist.Reg(60, 0, 600, "jet_pt"))
				for _, name := range c.InputNames() {
					blob, err := c.Input(name)
					if err != nil {
						return err
					}
					for _, pt := range decodeSkim(blob) {
						h.Fill(pt * factor)
					}
				}
				c.SetOutput("hist", h.Marshal())
				return nil
			},
			// accumulate: merge histogram blobs.
			"accumulate": func(c *vine.Call) error {
				var acc *hist.Hist
				for _, name := range c.InputNames() {
					blob, err := c.Input(name)
					if err != nil {
						return err
					}
					h, err := hist.Unmarshal(blob)
					if err != nil {
						return err
					}
					if acc == nil {
						acc = h
					} else if err := acc.Add(h); err != nil {
						return err
					}
				}
				if acc == nil {
					return fmt.Errorf("accumulate with no inputs")
				}
				c.SetOutput("hist", acc.Marshal())
				return nil
			},
		},
	})
}

func run(nChunks, nVariations, events int) error {
	if err := registerLibrary(); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "systematics-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	filesNeeded := (nChunks + 3) / 4
	fmt.Printf("synthesizing %d files x %d events (%d chunks, %d variations)...\n",
		filesNeeded, 4*events, nChunks, nVariations)
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "JetHT", Files: filesNeeded, EventsPerFile: 4 * events,
		Gen: rootio.GenOptions{Seed: 11, MeanJets: 5},
	})
	if err != nil {
		return err
	}

	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary("sysvar", true),
	)
	if err != nil {
		return err
	}
	defer mgr.Stop()
	for i := 0; i < 4; i++ {
		w, err := vine.NewWorker(mgr.Addr(), vine.WithName(fmt.Sprintf("w%d", i)), vine.WithCores(4))
		if err != nil {
			return err
		}
		defer w.Stop()
	}
	if err := mgr.WaitForWorkers(4, 5*time.Second); err != nil {
		return err
	}

	// Declare chunk files and build the DV3-Huge-shaped graph.
	fileCN := make([]vine.CacheName, len(paths))
	for i, p := range paths {
		cn, err := mgr.DeclareFile(p)
		if err != nil {
			return err
		}
		fileCN[i] = cn
	}
	g := dag.NewGraph()
	preKeys := make([]dag.Key, nChunks)
	for i := 0; i < nChunks; i++ {
		file := i / 4
		lo := int64(i%4) * int64(events)
		k := dag.Key(fmt.Sprintf("pre-%d", i))
		preKeys[i] = k
		g.MustAdd(&dag.Task{Key: k, Category: "preprocess", Spec: &daskvine.TaskTemplate{
			Library: "sysvar", Func: "preprocess",
			Args:    []byte(fmt.Sprintf("%d-%d", lo, lo+int64(events))),
			Outputs: []string{"skim"},
		}})
		// Chunk file input is wired manually below via a tiny wrapper: the
		// generic executor wires only graph deps, so the dataset file
		// travels as an explicit extra input.
		_ = file
	}
	var varRoots []dag.Key
	for v := 0; v < nVariations; v++ {
		factor := 1 + 0.02*float64(v-nVariations/2) // JES shifts ±2% steps
		k := dag.Key(fmt.Sprintf("var-%d", v))
		g.MustAdd(&dag.Task{Key: k, Category: "variation", Deps: preKeys, Spec: &daskvine.TaskTemplate{
			Library: "sysvar", Func: "variation",
			Args:    []byte(fmt.Sprintf("%g", factor)),
			Outputs: []string{"hist"},
		}})
		varRoots = append(varRoots, k)
	}
	g.MustAdd(&dag.Task{Key: "final", Category: "accumulate", Deps: varRoots, Spec: &daskvine.TaskTemplate{
		Library: "sysvar", Func: "accumulate", Outputs: []string{"hist"},
	}})
	if err := g.Finalize(); err != nil {
		return err
	}
	fmt.Printf("graph: %d tasks, %d initially executable, depth %d\n",
		g.Len(), len(g.Roots()), g.CriticalPathLen())

	// The preprocess tasks need their chunk file as an input. RunGeneric
	// wires dep outputs only, so attach the dataset file to each template
	// here (inputs beyond dep wiring are legal on the vine.Task it builds
	// — we pre-wire them through a per-task closure by mutating the
	// template into a one-off submission below).
	start := time.Now()
	res, err := runWithDataInputs(mgr, g, fileCN, events)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	blob, err := res.Fetch("final", "hist")
	if err != nil {
		return err
	}
	h, err := hist.Unmarshal(blob)
	if err != nil {
		return err
	}
	st := mgr.Stats()
	fmt.Printf("\ncompleted in %v: %d tasks, %d peer transfers (%.1f MB), %d manager transfers\n",
		elapsed.Round(time.Millisecond), st.TasksDone, st.PeerTransfers,
		float64(st.PeerBytes)/1e6, st.ManagerTransfers)
	fmt.Printf("combined jet-pt across %d variations: %d entries\n\n", nVariations, h.Entries)
	coarse, err := h.Rebin(4)
	if err != nil {
		return err
	}
	fmt.Println(coarse.ASCII(50))
	return nil
}

// runWithDataInputs is RunGeneric plus the dataset-file wiring for
// preprocess tasks: template inputs cover graph deps; the chunk file is an
// extra input each preprocess task needs.
func runWithDataInputs(mgr *vine.Manager, g *dag.Graph, fileCN []vine.CacheName, events int) (*daskvine.GenericResult, error) {
	res := daskvine.NewGenericResult(mgr)
	for _, k := range g.Topo() {
		tpl := g.Task(k).Spec.(*daskvine.TaskTemplate)
		vt := vine.Task{
			Mode: vine.ModeFunctionCall, Library: tpl.Library, Func: tpl.Func,
			Args: tpl.Args, Outputs: tpl.Outputs,
		}
		if g.Task(k).Category == "preprocess" {
			var idx int
			fmt.Sscanf(string(k), "pre-%d", &idx)
			vt.Inputs = append(vt.Inputs, vine.FileRef{Name: "data", CacheName: fileCN[idx/4]})
		}
		for _, d := range g.Task(k).Deps {
			dh := res.Handles[d]
			dtpl := g.Task(d).Spec.(*daskvine.TaskTemplate)
			for _, out := range dtpl.Outputs {
				cn, _ := dh.Output(out)
				vt.Inputs = append(vt.Inputs, vine.FileRef{Name: fmt.Sprintf("%s.%s", d, out), CacheName: cn})
			}
		}
		h, err := mgr.Submit(vt)
		if err != nil {
			return nil, err
		}
		res.Handles[k] = h
	}
	if err := res.Handles["final"].Wait(5 * time.Minute); err != nil {
		return nil, err
	}
	return res, nil
}
