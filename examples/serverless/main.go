// Serverless example: the §IV.B execution paradigms side by side on the
// live engine. The same burst of small function invocations runs three
// ways —
//
//  1. standard tasks: the environment ("imports") is rebuilt per task,
//  2. function calls without hoisting: persistent library, imports per call,
//  3. function calls with hoisting: imports once per LibraryTask,
//
// — and the example reports wall time and how many times Setup actually ran
// on the worker (Fig. 9's structure, measured rather than drawn).
//
//	go run ./examples/serverless [-calls 60] [-setup 25ms]
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"log"
	"time"

	"hepvine/internal/vine"
)

func main() {
	calls := flag.Int("calls", 60, "function invocations per mode")
	setup := flag.Duration("setup", 25*time.Millisecond, "simulated import cost")
	flag.Parse()
	if err := run(*calls, *setup); err != nil {
		log.Fatal(err)
	}
}

// sumSquares is the workload: sum of squares up to the argument, using the
// "imported" lookup table from the library state.
func sumSquares(c *vine.Call) error {
	table, ok := c.State().([]uint64)
	if !ok {
		return fmt.Errorf("library state missing")
	}
	n := binary.LittleEndian.Uint32(c.Args)
	var sum uint64
	for i := uint32(0); i <= n; i++ {
		sum += table[i%uint32(len(table))] * uint64(i)
	}
	var out [8]byte
	binary.LittleEndian.PutUint64(out[:], sum)
	c.SetOutput("sum", out[:])
	return nil
}

func run(calls int, setupCost time.Duration) error {
	lib := &vine.Library{
		Name:       "mathlib",
		SetupDelay: setupCost, // stands in for `import numpy, scipy`
		Setup: func() (any, error) {
			table := make([]uint64, 4096)
			for i := range table {
				table[i] = uint64(i * i)
			}
			return table, nil
		},
		Funcs: map[string]vine.Function{"sumsq": sumSquares},
	}
	if err := vine.RegisterLibrary(lib); err != nil {
		return err
	}

	type mode struct {
		label string
		mode  vine.TaskMode
		hoist bool
	}
	modes := []mode{
		{"standard tasks (imports per task)", vine.ModeTask, false},
		{"function calls, unhoisted imports", vine.ModeFunctionCall, false},
		{"function calls, hoisted imports", vine.ModeFunctionCall, true},
	}

	fmt.Printf("%d invocations per mode, simulated import cost %v\n\n", calls, setupCost)
	var baseline time.Duration
	for _, m := range modes {
		mgr, err := vine.NewManager(
			vine.WithPeerTransfers(true),
			vine.WithLibrary("mathlib", m.hoist),
		)
		if err != nil {
			return err
		}
		worker, err := vine.NewWorker(mgr.Addr(), vine.WithName("w0"), vine.WithCores(4))
		if err != nil {
			mgr.Stop()
			return err
		}
		if err := mgr.WaitForWorkers(1, 5*time.Second); err != nil {
			mgr.Stop()
			return err
		}

		start := time.Now()
		handles := make([]*vine.TaskHandle, calls)
		for i := range handles {
			var args [4]byte
			binary.LittleEndian.PutUint32(args[:], uint32(1000+i))
			h, err := mgr.Submit(vine.Task{
				Mode: m.mode, Library: "mathlib", Func: "sumsq",
				Args: args[:], Outputs: []string{"sum"},
			})
			if err != nil {
				mgr.Stop()
				return err
			}
			handles[i] = h
		}
		var setupTotal time.Duration
		for _, h := range handles {
			if err := h.Wait(time.Minute); err != nil {
				mgr.Stop()
				return err
			}
			setupTotal += h.SetupTime()
		}
		elapsed := time.Since(start)
		if baseline == 0 {
			baseline = elapsed
		}
		setups := worker.LibrarySetupCount("mathlib")
		if m.mode == vine.ModeTask {
			setups = calls // standard tasks rebuild the environment every time
		}
		fmt.Printf("%-36s wall %8v  speedup %5.2fx  env built %3dx  setup time %v\n",
			m.label, elapsed.Round(time.Millisecond),
			baseline.Seconds()/elapsed.Seconds(), setups,
			setupTotal.Round(time.Millisecond))
		worker.Stop()
		mgr.Stop()
	}
	fmt.Println("\nhoisting moves the import cost from every invocation to once per LibraryTask (Fig. 9).")
	return nil
}
