// Quickstart: the Go analogue of the paper's Fig. 4 sample application.
//
// It synthesizes a small "SingleMu"-style dataset, partitions it into
// chunks ("chunks_per_file"), builds the histogram-of-MET task graph, and
// executes it on a real TaskVine manager with in-process workers over
// loopback TCP — peer transfers on, serverless function calls, hoisted
// imports. The result is fetched back and printed as an ASCII histogram.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/coffea"
	"hepvine/internal/daskvine"
	"hepvine/internal/obs"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The processors and the serverless library must be registered in
	// every process that hosts a manager or worker (Go ships code at
	// compile time, not pickle time).
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(50 * time.Millisecond)); err != nil {
		return err
	}

	// dataset = get_dataset("SingleMu")
	dir, err := os.MkdirTemp("", "quickstart-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Println("generating dataset (4 files x 20k events)...")
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "SingleMu", Files: 4, EventsPerFile: 20000,
		Gen: rootio.GenOptions{Seed: 2024},
	})
	if err != nil {
		return err
	}

	// events = NanoEventsFactory.from_root(..., chunks_per_file=5)
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: 20000}
	}
	chunks, err := coffea.PartitionPerFile("SingleMu", files, 5)
	if err != nil {
		return err
	}

	// hist = Hist.new.Reg(100, 0, 200, name="met").fill(events.MET.pt)
	// (the METProcessor embodies this; BuildGraph lowers it to a DAG)
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		return err
	}
	fmt.Printf("task graph: %d tasks over %d chunks\n", graph.Len(), len(chunks))

	// manager = DaskVine(name="my_manager"); a shared recorder traces the
	// whole cluster — manager lifecycle plus worker-side cache events.
	rec := obs.NewRecorder()
	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true), // peer_transfers=True
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithRecorder(rec),
	)
	if err != nil {
		return err
	}
	defer mgr.Stop()

	// lib_resources={'cores':12, 'slots':12} — one 12-core worker plus a
	// second node to show peer transfers.
	for i := 0; i < 2; i++ {
		w, err := vine.NewWorker(mgr.Addr(),
			vine.WithName(fmt.Sprintf("worker-%d", i)),
			vine.WithCores(12),
			vine.WithRecorder(rec),
		)
		if err != nil {
			return err
		}
		defer w.Stop()
	}
	if err := mgr.WaitForWorkers(2, 5*time.Second); err != nil {
		return err
	}
	fmt.Printf("manager %s with %d workers connected\n", mgr.Addr(), mgr.WorkerCount())

	// result = manager.compute(..., task_mode='function-calls')
	start := time.Now()
	result, err := daskvine.Run(mgr, graph, root, daskvine.Options{
		Mode:    vine.ModeFunctionCall,
		Timeout: 2 * time.Minute,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	h := result.H["met"]
	fmt.Printf("\nMET histogram (%d events, computed in %v):\n\n", h.Entries, elapsed.Round(time.Millisecond))
	coarse, err := h.Rebin(4)
	if err != nil {
		return err
	}
	fmt.Println(coarse.ASCII(60))
	st := mgr.Stats()
	fmt.Printf("tasks done: %d  peer transfers: %d (%d bytes)  manager transfers: %d\n",
		st.TasksDone, st.PeerTransfers, st.PeerBytes, st.ManagerTransfers)

	// Export the trace as JSONL, reload it, and render the paper figures
	// from the replay — the same renderers internal/bench uses on
	// simulator traces.
	tracePath := dir + "/trace.jsonl"
	tf, err := os.Create(tracePath)
	if err != nil {
		return err
	}
	if err := rec.WriteJSONL(tf); err != nil {
		tf.Close()
		return err
	}
	if err := tf.Close(); err != nil {
		return err
	}
	rf, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	events, err := obs.ReadJSONL(rf)
	rf.Close()
	if err != nil {
		return err
	}
	fmt.Printf("\ntrace: %d events -> %s\n", len(events), tracePath)

	fmt.Println("\nFig. 12-style timeline (tasks waiting/running/done per 250ms):")
	fmt.Println("seconds,waiting,running,done,failed")
	for _, p := range obs.Timeline(events, 250*time.Millisecond) {
		fmt.Printf("%.2f,%d,%d,%d,%d\n", p.T.Seconds(), p.Waiting, p.Running, p.Done, p.Failed)
	}

	fmt.Println("\nFig. 7-style transfer matrix (bytes moved src -> dst):")
	matrix := obs.TransferMatrix(events)
	if err := obs.WriteMatrixCSV(os.Stdout, matrix); err != nil {
		return err
	}
	return nil
}
