// DV3 example: the paper's primary application (§II.A) — a search for
// Higgs → bb̄ decays in jet data — run end-to-end on the live TaskVine
// engine, then validated bin-for-bin against a single-threaded local run.
//
// Exercises the full data path: dataset files declared to the manager, chunk
// replicas flowing to workers (peer transfers on), real columnar selection
// kernels inside serverless function calls, and hierarchical accumulation.
//
//	go run ./examples/dv3 [-workers 4] [-cores 4] [-files 6] [-events 10000]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/coffea"
	"hepvine/internal/daskvine"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

func main() {
	workers := flag.Int("workers", 4, "number of in-process workers")
	cores := flag.Int("cores", 4, "cores per worker")
	files := flag.Int("files", 6, "dataset files to synthesize")
	events := flag.Int("events", 10000, "events per file")
	flag.Parse()
	if err := run(*workers, *cores, *files, *events); err != nil {
		log.Fatal(err)
	}
}

func run(workers, cores, nFiles, events int) error {
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(100 * time.Millisecond)); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "dv3-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Printf("synthesizing %d files x %d events...\n", nFiles, events)
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "JetHT", Files: nFiles, EventsPerFile: events,
		Gen: rootio.GenOptions{Seed: 7, MeanJets: 5},
	})
	if err != nil {
		return err
	}
	infos := make([]coffea.FileInfo, len(paths))
	var totalBytes int64
	for i, p := range paths {
		st, err := os.Stat(p)
		if err != nil {
			return err
		}
		totalBytes += st.Size()
		infos[i] = coffea.FileInfo{Path: p, NEvents: int64(events)}
	}
	chunks, err := coffea.Partition("JetHT", infos, int64(events)/4)
	if err != nil {
		return err
	}
	graph, root, err := coffea.BuildGraph("dv3", chunks, coffea.GraphOptions{FanIn: 4})
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %.1f MB on disk, %d chunks, %d-task graph (critical path %d)\n",
		float64(totalBytes)/1e6, len(chunks), graph.Len(), graph.CriticalPathLen())

	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
	)
	if err != nil {
		return err
	}
	defer mgr.Stop()
	for i := 0; i < workers; i++ {
		w, err := vine.NewWorker(mgr.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(cores),
		)
		if err != nil {
			return err
		}
		defer w.Stop()
	}
	if err := mgr.WaitForWorkers(workers, 5*time.Second); err != nil {
		return err
	}

	start := time.Now()
	dist, err := daskvine.Run(mgr, graph, root, daskvine.Options{Timeout: 5 * time.Minute})
	if err != nil {
		return err
	}
	distTime := time.Since(start)

	fmt.Printf("\ndistributed run: %v over %d workers x %d cores\n", distTime.Round(time.Millisecond), workers, cores)
	st := mgr.Stats()
	fmt.Printf("  tasks=%d retries=%d peer transfers=%d (%.1f MB) manager transfers=%d\n",
		st.TasksDone, st.Retries, st.PeerTransfers, float64(st.PeerBytes)/1e6, st.ManagerTransfers)

	// Ground truth: same analysis, serial, in this process.
	start = time.Now()
	local, err := coffea.RunLocal(apps.DV3Processor{}, chunks)
	if err != nil {
		return err
	}
	fmt.Printf("local serial run: %v\n", time.Since(start).Round(time.Millisecond))

	// Validate bin-for-bin.
	for _, name := range local.Names() {
		lh, dh := local.H[name], dist.H[name]
		if dh == nil {
			return fmt.Errorf("distributed result missing %q", name)
		}
		for i := range lh.Counts {
			if math.Abs(lh.Counts[i]-dh.Counts[i]) > 1e-9 {
				return fmt.Errorf("%s bin %d differs: local %v distributed %v", name, i, lh.Counts[i], dh.Counts[i])
			}
		}
	}
	fmt.Println("validation: distributed result identical to local ground truth ✓")

	mjj := dist.H["dijet_mass"]
	fmt.Printf("\ndijet invariant mass (%0.f candidates, weighted):\n\n", mjj.InRangeSum())
	coarse, err := mjj.Rebin(4)
	if err != nil {
		return err
	}
	fmt.Println(coarse.ASCII(50))
	return nil
}
