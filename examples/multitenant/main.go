// Multitenant: weighted fair-share across submission queues.
//
// Two tenants share one small cluster: an "interactive" queue (an analyst
// iterating on a plot, weight 3) and a "batch" queue (a bulk systematics
// sweep, weight 1). Both submit a backlog before any worker exists; the
// scheduler then drains them 3:1, so interactive work finishes early even
// though batch submitted just as much. The per-queue wait and throughput
// printed at the end are the numbers the weights are buying.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"
	"time"

	"hepvine/internal/vine"
)

const tasksPerQueue = 24

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	vine.MustRegisterLibrary(&vine.Library{
		Name: "tenantlib",
		Funcs: map[string]vine.Function{
			"work": func(c *vine.Call) error {
				time.Sleep(25 * time.Millisecond) // a small analysis step
				c.SetOutput("out", []byte("done"))
				return nil
			},
		},
	})

	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary("tenantlib", true),
		vine.WithQueue("interactive", 3),
		vine.WithQueue("batch", 1),
	)
	if err != nil {
		return err
	}
	defer mgr.Stop()

	// Submit both backlogs while no worker is connected, so the queues
	// genuinely contend for the first free core.
	var handles []*vine.TaskHandle
	var interactive []*vine.TaskHandle
	for i := 0; i < tasksPerQueue; i++ {
		for _, q := range []string{"interactive", "batch"} {
			h, err := mgr.Submit(vine.Task{
				Library: "tenantlib", Func: "work",
				Outputs: []string{"out"}, Queue: q,
			})
			if err != nil {
				return err
			}
			handles = append(handles, h)
			if q == "interactive" {
				interactive = append(interactive, h)
			}
		}
	}
	fmt.Printf("submitted %d tasks per queue, starting one 2-core worker...\n", tasksPerQueue)

	start := time.Now()
	w, err := vine.NewWorker(mgr.Addr(), vine.WithName("shared-0"), vine.WithCores(2))
	if err != nil {
		return err
	}
	defer w.Stop()

	for _, h := range interactive {
		if err := h.Wait(time.Minute); err != nil {
			return err
		}
	}
	interactiveDone := time.Since(start)
	for _, h := range handles {
		if err := h.Wait(time.Minute); err != nil {
			return err
		}
	}
	allDone := time.Since(start)

	fmt.Printf("\ninteractive queue drained in %v; everything in %v\n\n",
		interactiveDone.Round(time.Millisecond), allDone.Round(time.Millisecond))
	fmt.Printf("%-12s %7s %10s %12s %12s\n", "queue", "weight", "dispatched", "mean wait", "throughput")
	for _, qs := range mgr.QueueStats() {
		if qs.Dispatched == 0 {
			continue
		}
		meanWait := time.Duration(qs.WaitTotal / qs.Dispatched)
		tput := float64(qs.Dispatched) / allDone.Seconds()
		fmt.Printf("%-12s %7.0f %10d %12v %9.1f/s\n",
			qs.Name, qs.Weight, qs.Dispatched,
			meanWait.Round(time.Millisecond), tput)
	}
	fmt.Println("\n(the 3:1 weights show up as a much lower mean wait for interactive)")
	return nil
}
