// Chaos: the failure-domain hardening demo.
//
// It runs the quickstart workload (chunked MET histogram on a live
// TaskVine cluster over loopback TCP) while a deterministic seeded fault
// plan kills two of the four workers mid-run and black-holes a third —
// stalled, not closed, so only the heartbeat monitor can tell. The
// workload still completes; the trace shows every heartbeat miss, worker
// loss, fast-abort, and backoff retry that got it there.
//
//	go run ./examples/chaos
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/chaos"
	"hepvine/internal/coffea"
	"hepvine/internal/daskvine"
	"hepvine/internal/obs"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)); err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	fmt.Println("generating dataset (4 files x 10k events)...")
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "SingleMu", Files: 4, EventsPerFile: 10000,
		Gen: rootio.GenOptions{Seed: 2024},
	})
	if err != nil {
		return err
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: 10000}
	}
	chunks, err := coffea.PartitionPerFile("SingleMu", files, 6)
	if err != nil {
		return err
	}
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		return err
	}

	// The fault plan: everything below is scheduled relative to Start()
	// and derived from one seed, so a rerun reproduces the same failures.
	rec := obs.NewRecorder()
	plan := chaos.NewPlan(7).Add(
		chaos.Fault{Kind: chaos.KindKill, Target: "w0", At: 20 * time.Millisecond},
		chaos.Fault{Kind: chaos.KindStall, Target: "w2", At: 35 * time.Millisecond, Dur: time.Second},
		chaos.Fault{Kind: chaos.KindKill, Target: "w1", At: 55 * time.Millisecond},
	)
	plan.SetRecorder(rec)
	defer plan.Stop()
	fmt.Println("fault plan:")
	for _, f := range plan.Faults() {
		fmt.Printf("  %s\n", f)
	}

	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithRecorder(rec),
		vine.WithHeartbeat(50*time.Millisecond, 400*time.Millisecond),
		vine.WithMaxRetries(10),
		vine.WithRetryBackoff(5*time.Millisecond, 80*time.Millisecond),
		vine.WithTaskDeadline(3*time.Second),
	)
	if err != nil {
		return err
	}
	defer mgr.Stop()
	for i := 0; i < 4; i++ {
		w, err := vine.NewWorker(mgr.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(4),
			vine.WithFaultInjector(plan), // faults bite only the worker side
			vine.WithTransferTimeout(time.Second),
			vine.WithRecorder(rec),
		)
		if err != nil {
			return err
		}
		defer w.Stop()
	}
	if err := mgr.WaitForWorkers(4, 5*time.Second); err != nil {
		return err
	}
	fmt.Printf("manager %s with %d workers connected\n\n", mgr.Addr(), mgr.WorkerCount())

	plan.Start()
	start := time.Now()
	result, err := daskvine.Run(mgr, graph, root, daskvine.Options{
		Mode: vine.ModeFunctionCall, Timeout: 2 * time.Minute,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	h := result.H["met"]
	fmt.Printf("MET histogram survived the plan (%d events in %v):\n\n",
		h.Entries, elapsed.Round(time.Millisecond))
	coarse, err := h.Rebin(4)
	if err != nil {
		return err
	}
	fmt.Println(coarse.ASCII(60))

	st := mgr.Stats()
	fmt.Printf("faults fired: %d   workers lost: %d   heartbeat misses: %d\n",
		plan.Fired(), st.WorkersLost, st.HeartbeatMisses)
	fmt.Printf("task retries: %d   fast-aborts: %d   tasks done: %d\n\n",
		st.Retries, st.TasksAborted, st.TasksDone)

	fmt.Println("failure-domain events from the shared trace:")
	for _, ev := range rec.Events() {
		switch ev.Type {
		case obs.EvChaosFault, obs.EvHeartbeatMiss, obs.EvWorkerLost,
			obs.EvTaskAbort, obs.EvTaskRetry, obs.EvNetRetry:
			fmt.Printf("  %8.0fms %-15s worker=%-4s task=%-12s %s\n",
				ev.T.Seconds()*1000, ev.Type, ev.Worker, ev.Task, ev.Detail)
		}
	}
	return nil
}
