// Chaos soak for the federation tier: the quickstart workload executed
// on a two-shard foreman tree, with one foreman killed the moment it has
// produced its first processor output. The root must replay the dead
// shard's leases onto the survivor, the dead shard's workers must re-home
// to the sibling, ticketed inputs whose source shard died must climb the
// lineage ladder across the boundary — and the final histogram must be
// bit-identical to a fault-free federated run, twice over.
package benchrun

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/foreman"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

// runFederated executes the chunked MET workload on a 2-foreman,
// 2-workers-per-foreman tree. With kill set, foreman 0 is crashed —
// uplink first, then its whole local cluster — right after the first
// processor output lands anywhere, which is mid-run by construction
// (accumulations still need every processor output).
func runFederated(t *testing.T, seed uint64, kill bool) ([]byte, vine.FederationStats) {
	t.Helper()
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "FedMu", Files: 4, EventsPerFile: 6000,
		Gen: rootio.GenOptions{Seed: 19},
	})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: 6000}
	}
	chunks, err := coffea.PartitionPerFile("FedMu", files, 4)
	if err != nil {
		t.Fatal(err)
	}
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}

	shardOpts := func(int) []vine.Option {
		return []vine.Option{
			vine.WithPeerTransfers(true),
			vine.WithLibrary(daskvine.LibraryName, true),
			vine.WithMaxRetries(10),
			vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
			vine.WithRetrySeed(seed),
			vine.WithRecoveryTimeout(20 * time.Second),
		}
	}
	fed, err := foreman.NewLocalFederation(foreman.LocalConfig{
		Foremen:           2,
		WorkersPerForeman: 2,
		CoresPerWorker:    2,
		ReportEvery:       15 * time.Millisecond,
		RootOptions: []vine.Option{
			vine.WithMaxRetries(10),
			vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
			vine.WithRetrySeed(seed),
			vine.WithRecoveryTimeout(20 * time.Second),
		},
		LocalOptions: shardOpts,
		WorkerOptions: func(int, int) []vine.Option {
			return []vine.Option{vine.WithCacheDir(t.TempDir())}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fed.Stop()
	if err := fed.Root.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	opts := daskvine.Options{Mode: vine.ModeFunctionCall, Timeout: 120 * time.Second}
	if kill {
		var once sync.Once
		opts.OnTaskDone = func(key dag.Key, h *vine.TaskHandle) {
			once.Do(func() { fed.Foremen[0].Crash() })
		}
	}
	res, err := daskvine.Run(fed.Root, graph, root, opts)
	if err != nil {
		t.Fatalf("federated workload failed (kill=%v): %v", kill, err)
	}
	met := res.H["met"]
	if met == nil || met.Entries == 0 {
		t.Fatalf("empty MET histogram (kill=%v)", kill)
	}
	return met.Marshal(), fed.Root.FederationStats()
}

// TestChaosForemanKillRehome is the federation's headline robustness
// proof: kill a whole shard mid-run and the answer does not change.
func TestChaosForemanKillRehome(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	base, bst := runFederated(t, 7, false)
	if bst.Foremen != 2 || bst.LeaseGrants == 0 {
		t.Fatalf("fault-free federation stats: %+v", bst)
	}
	got, st := runFederated(t, 7, true)
	if !bytes.Equal(base, got) {
		t.Fatalf("post-crash run diverged from fault-free run: %d vs %d bytes", len(base), len(got))
	}
	if st.Foremen != 1 {
		t.Fatalf("live foremen after kill = %d: %+v", st.Foremen, st)
	}
	survivors := 0
	for _, sh := range st.Shards {
		if sh.Alive && sh.TasksDone > 0 {
			survivors++
		}
	}
	if survivors != 1 {
		t.Fatalf("no surviving shard absorbed the work: %+v", st.Shards)
	}
	again, _ := runFederated(t, 7, true)
	if !bytes.Equal(got, again) {
		t.Fatal("same-seed post-crash runs diverged")
	}
}
