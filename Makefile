# Convenience targets; everything is plain `go` underneath.
# Run `make help` for the list.

.PHONY: help check test race chaos chaos-ha chaos-pool chaos-foreman gate bench bench-sched bench-recovery bench-warm bench-ha bench-gate bench-pool bench-foreman journal-fuzz verify paper examples tidy

help:                 ## list targets
	@grep -E '^[a-z]+: *##' $(MAKEFILE_LIST) | awk -F': *## *' '{printf "  %-10s %s\n", $$1, $$2}'

check:                ## full gate: vet + build + tests + full race pass + chaos smoke (use before sending a PR)
	go vet ./...
	go build ./...
	go test ./...
	go test -race ./...
	go test -race -count=1 -run TestChaosSoakDeterministic .

test:                 ## full test suite
	go build ./... && go vet ./... && go test ./...

race:                 ## race-detector pass over every package
	go test -race ./...

chaos:                ## deterministic chaos suite: kills, stall, dead replica, sole-replica loss, corrupt payloads, manager-kill resume
	go test -race -count=1 -v -run 'TestChaosSoakDeterministic|TestChaosSoakLineageRecovery|TestChaosCorruptTransferHealed|TestChaosManagerKillResume' .

chaos-ha:             ## availability suite: hot-standby failover soak + split-brain fencing regression
	go test -race -count=1 -v -run 'TestChaosFailoverToStandby|TestChaosFencedPrimaryRefusesDispatch' .

chaos-pool:           ## elasticity suite: autoscaled pool riding through a graceful drain + a blown grace window
	go test -race -count=1 -v -run 'TestChaosElasticPreemptionSoak' .

chaos-foreman:        ## federation suite: foreman killed mid-run, workers re-home to a sibling shard, bit-identical finish
	go test -race -count=1 -v -run TestChaosForemanKillRehome .

gate:                 ## multi-tenant front door: race-enabled gate unit suite + two-tenant HTTP e2e smoke
	go test -race -count=1 ./internal/gate/
	go test -race -count=1 -v -run TestGateTwoTenantE2E .

bench:                ## one benchmark per table/figure, reduced scale
	go test -bench=. -benchmem ./...

bench-sched:          ## compare placement policies (locality/binpack/spread/random) on DV3-Medium
	go run ./cmd/vinebench -scale 0.25 sched

bench-recovery:       ## recovery overhead: faulted vs fault-free live run, bit-identical histograms
	go run ./cmd/vinebench -scale 0.25 recovery

bench-warm:           ## warm restart: cold vs warm vs crash-resume on DV3, tasks re-executed + wall-clock ratio
	go run ./cmd/vinebench -scale 0.25 warm

bench-ha:             ## hot-standby failover: takeover latency + re-executed tasks vs fault-free baseline
	go run ./cmd/vinebench -scale 0.25 ha

bench-gate:           ## multi-tenant gate: submissions/sec + p50/p99 submit-to-first-dispatch latency over HTTP
	go run ./cmd/vinebench -scale 0.25 gate

bench-pool:           ## elastic vs fixed pools under preemption: makespan, re-executed work, pool size over time
	go run ./cmd/vinebench -scale 0.25 pool

bench-foreman:        ## hierarchical foremen: tiny-task dispatch throughput flat vs 2/4-foreman trees + cross-shard bytes
	go run ./cmd/vinebench -scale 0.25 foreman

journal-fuzz:         ## journal frame-corruption fuzz with randomized seeds (pin one with JOURNAL_FUZZ_SEED=n)
	JOURNAL_FUZZ_SEED=$${JOURNAL_FUZZ_SEED:-0} go test -count=8 -v -run TestFrameCorruptionFuzz ./internal/journal/

verify:               ## assert every reproduced shape claim at paper scale
	go run ./cmd/vinebench -scale 1 verify

paper:                ## regenerate every table and figure at paper scale
	go run ./cmd/vinebench -scale 1 all

examples:             ## run every example end to end
	go run ./examples/quickstart
	go run ./examples/dv3
	go run ./examples/triphoton
	go run ./examples/serverless
	go run ./examples/remotedata
	go run ./examples/systematics
	go run ./examples/chaos
	go run ./examples/multitenant

tidy:                 ## gofmt + vet
	gofmt -w .
	go vet ./...
