// Chaos soak: the quickstart workload (dataset -> chunked MET histogram
// via the live TaskVine engine) executed under a deterministic fault
// plan — two worker kills, one worker stall, and a dead XRootD replica —
// must still complete, and two runs with the same seed must produce
// bit-identical histograms. This is the end-to-end proof behind the
// failure-domain hardening: liveness, retry, failover, and idempotent
// output handling composed on one cluster.
package benchrun

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/chaos"
	"hepvine/internal/coffea"
	"hepvine/internal/daskvine"
	"hepvine/internal/hist"
	"hepvine/internal/obs"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
	"hepvine/internal/xrootd"
)

// soakPlan is the seeded fault schedule, relative to plan.Start():
// kill two of the four workers, black-hole a third for a second, and
// declare one XRootD endpoint dead before the read phase begins.
func soakPlan(seed uint64, rec *obs.Recorder) *chaos.Plan {
	p := chaos.NewPlan(seed).Add(
		chaos.Fault{Kind: chaos.KindKill, Target: "xra", At: 10 * time.Millisecond},
		chaos.Fault{Kind: chaos.KindKill, Target: "w0", At: 60 * time.Millisecond},
		chaos.Fault{Kind: chaos.KindStall, Target: "w2", At: 90 * time.Millisecond, Dur: time.Second},
		chaos.Fault{Kind: chaos.KindKill, Target: "w1", At: 140 * time.Millisecond},
	)
	p.SetRecorder(rec)
	return p
}

// runSoak executes one full pass and returns the serialized histograms
// from both planes plus the number of faults that actually fired.
func runSoak(t *testing.T, seed uint64) (result []byte, fired int) {
	t.Helper()
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "SoakMu", Files: 4, EventsPerFile: 8000,
		Gen: rootio.GenOptions{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: 8000}
	}
	chunks, err := coffea.PartitionPerFile("SoakMu", files, 6)
	if err != nil {
		t.Fatal(err)
	}
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	plan := soakPlan(seed, rec)
	defer plan.Stop()

	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithRecorder(rec),
		vine.WithHeartbeat(50*time.Millisecond, 400*time.Millisecond),
		vine.WithMaxRetries(10),
		vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
		vine.WithRetrySeed(seed),
		vine.WithTaskDeadline(3*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	for i := 0; i < 4; i++ {
		w, err := vine.NewWorker(mgr.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(4),
			vine.WithCacheDir(t.TempDir()),
			vine.WithFaultInjector(plan),
			vine.WithTransferTimeout(time.Second),
			vine.WithHeartbeat(50*time.Millisecond, 5*time.Second),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
	}
	if err := mgr.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	plan.Start()
	res, err := daskvine.Run(mgr, graph, root, daskvine.Options{
		Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatalf("workload under chaos failed: %v", err)
	}
	met := res.H["met"]
	if met == nil || met.Entries == 0 {
		t.Fatalf("empty MET histogram under chaos: %+v", res.H)
	}

	// Second plane: read a branch through the reliable XRootD client; the
	// "xra" endpoint was killed by the plan, so the first operation must
	// fail over to the replica.
	a, err := xrootd.NewServer(dir, 0, xrootd.WithConnWrapper(plan), xrootd.WithLabel("xra"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := xrootd.NewServer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rc, err := xrootd.DialReliable([]string{a.Addr(), b.Addr()}, xrootd.ReliableOptions{
		BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
		DialTimeout: 2 * time.Second, Seed: seed, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	name := strings.TrimPrefix(paths[0], dir+"/")
	vals, err := rc.ReadFlat(name, "MET_pt", 0, 2000)
	if err != nil {
		t.Fatalf("xrootd read across dead replica failed: %v", err)
	}
	if rc.Addr() != b.Addr() {
		t.Fatalf("client still on killed endpoint %s", rc.Addr())
	}
	remote := hist.New(hist.Axis{Bins: 100, Lo: 0, Hi: 200, Name: "met"})
	remote.FillN(vals)

	retries := 0
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvNetRetry {
			retries++
		}
	}
	if retries == 0 {
		t.Fatal("no EvNetRetry recorded across the dead-replica failover")
	}

	return append(met.Marshal(), remote.Marshal()...), plan.Fired()
}

// TestChaosSoakDeterministic is the headline robustness test: the same
// seeded fault plan applied twice yields byte-identical results, while
// every scheduled fault actually fires.
func TestChaosSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r1, fired1 := runSoak(t, 7)
	if fired1 < 4 {
		t.Fatalf("only %d of 4 scheduled faults fired", fired1)
	}
	r2, fired2 := runSoak(t, 7)
	if fired2 != fired1 {
		t.Fatalf("fault counts diverged across same-seed runs: %d vs %d", fired1, fired2)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatalf("same-seed runs diverged: %d vs %d result bytes", len(r1), len(r2))
	}
}
