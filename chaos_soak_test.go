// Chaos soak: the quickstart workload (dataset -> chunked MET histogram
// via the live TaskVine engine) executed under a deterministic fault
// plan — two worker kills, one worker stall, and a dead XRootD replica —
// must still complete, and two runs with the same seed must produce
// bit-identical histograms. This is the end-to-end proof behind the
// failure-domain hardening: liveness, retry, failover, and idempotent
// output handling composed on one cluster.
package benchrun

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/chaos"
	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/hist"
	"hepvine/internal/obs"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
	"hepvine/internal/xrootd"
)

// soakPlan is the seeded fault schedule, relative to plan.Start():
// kill two of the four workers, black-hole a third for a second, and
// declare one XRootD endpoint dead before the read phase begins. The
// offsets are packed into the first ~60ms because the fault-free
// workload itself runs in well under 100ms (staging transfers avoid the
// kernel sendfile path and its loopback delayed-ACK stalls); every
// fault must land while work is still in flight.
func soakPlan(seed uint64, rec *obs.Recorder) *chaos.Plan {
	p := chaos.NewPlan(seed).Add(
		chaos.Fault{Kind: chaos.KindKill, Target: "xra", At: 10 * time.Millisecond},
		chaos.Fault{Kind: chaos.KindKill, Target: "w0", At: 25 * time.Millisecond},
		chaos.Fault{Kind: chaos.KindStall, Target: "w2", At: 40 * time.Millisecond, Dur: time.Second},
		chaos.Fault{Kind: chaos.KindKill, Target: "w1", At: 60 * time.Millisecond},
	)
	p.SetRecorder(rec)
	return p
}

// runSoak executes one full pass and returns the serialized histograms
// from both planes plus the number of faults that actually fired.
func runSoak(t *testing.T, seed uint64) (result []byte, fired int) {
	t.Helper()
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	paths, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "SoakMu", Files: 4, EventsPerFile: 8000,
		Gen: rootio.GenOptions{Seed: 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	files := make([]coffea.FileInfo, len(paths))
	for i, p := range paths {
		files[i] = coffea.FileInfo{Path: p, NEvents: 8000}
	}
	chunks, err := coffea.PartitionPerFile("SoakMu", files, 6)
	if err != nil {
		t.Fatal(err)
	}
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}

	rec := obs.NewRecorder()
	plan := soakPlan(seed, rec)
	defer plan.Stop()

	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithRecorder(rec),
		vine.WithHeartbeat(50*time.Millisecond, 400*time.Millisecond),
		vine.WithMaxRetries(10),
		vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
		vine.WithRetrySeed(seed),
		vine.WithTaskDeadline(3*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	for i := 0; i < 4; i++ {
		w, err := vine.NewWorker(mgr.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(4),
			vine.WithCacheDir(t.TempDir()),
			vine.WithFaultInjector(plan),
			vine.WithTransferTimeout(time.Second),
			vine.WithHeartbeat(50*time.Millisecond, 5*time.Second),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
	}
	if err := mgr.WaitForWorkers(4, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	plan.Start()
	res, err := daskvine.Run(mgr, graph, root, daskvine.Options{
		Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second,
	})
	if err != nil {
		t.Fatalf("workload under chaos failed: %v", err)
	}
	met := res.H["met"]
	if met == nil || met.Entries == 0 {
		t.Fatalf("empty MET histogram under chaos: %+v", res.H)
	}

	// Second plane: read a branch through the reliable XRootD client; the
	// "xra" endpoint was killed by the plan, so the first operation must
	// fail over to the replica.
	a, err := xrootd.NewServer(dir, 0, xrootd.WithConnWrapper(plan), xrootd.WithLabel("xra"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := xrootd.NewServer(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	rc, err := xrootd.DialReliable([]string{a.Addr(), b.Addr()}, xrootd.ReliableOptions{
		BackoffBase: 2 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
		DialTimeout: 2 * time.Second, Seed: seed, Recorder: rec,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	name := strings.TrimPrefix(paths[0], dir+"/")
	vals, err := rc.ReadFlat(name, "MET_pt", 0, 2000)
	if err != nil {
		t.Fatalf("xrootd read across dead replica failed: %v", err)
	}
	if rc.Addr() != b.Addr() {
		t.Fatalf("client still on killed endpoint %s", rc.Addr())
	}
	remote := hist.New(hist.Axis{Bins: 100, Lo: 0, Hi: 200, Name: "met"})
	remote.FillN(vals)

	retries := 0
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvNetRetry {
			retries++
		}
	}
	if retries == 0 {
		t.Fatal("no EvNetRetry recorded across the dead-replica failover")
	}

	// The schedule sits entirely inside the workload's lifetime, but the
	// last timer can still be pending if the run finished unusually
	// fast; wait it out so Fired is stable before the caller asserts.
	for deadline := time.Now().Add(2 * time.Second); plan.Fired() < 4 && time.Now().Before(deadline); {
		time.Sleep(time.Millisecond)
	}

	return append(met.Marshal(), remote.Marshal()...), plan.Fired()
}

// recoveryWorkload builds a deliberately lopsided two-chunk analysis: one
// 400-event file and one 8000-event file, one chunk each, fanned into a
// single accumulation. The fast chunk finishes long before the slow one,
// which pins a window where its histogram is the sole replica of an
// intermediate the root still needs.
func recoveryWorkload(t *testing.T) (*dag.Graph, dag.Key) {
	t.Helper()
	dir := t.TempDir()
	small, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "RecSmall", Files: 1, EventsPerFile: 400,
		Gen: rootio.GenOptions{Seed: 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	big, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
		Name: "RecBig", Files: 1, EventsPerFile: 8000,
		Gen: rootio.GenOptions{Seed: 17},
	})
	if err != nil {
		t.Fatal(err)
	}
	chunks, err := coffea.PartitionPerFile("Rec", []coffea.FileInfo{
		{Path: small[0], NEvents: 400},
		{Path: big[0], NEvents: 8000},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	graph, root, err := coffea.BuildGraph("met", chunks, coffea.GraphOptions{FanIn: 2})
	if err != nil {
		t.Fatal(err)
	}
	return graph, root
}

// runRecovery executes the lopsided workload on a two-worker cluster.
// With kill set, the worker that produced the first processor output is
// stopped the instant that output exists — mid-run, while it holds the
// only replica of an intermediate the final accumulation still needs —
// so the run can only complete through lineage re-execution.
func runRecovery(t *testing.T, seed uint64, kill bool) ([]byte, vine.ManagerStats, *obs.Recorder) {
	t.Helper()
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	graph, root := recoveryWorkload(t)

	rec := obs.NewRecorder()
	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithRecorder(rec),
		vine.WithMaxRetries(10),
		vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
		vine.WithRetrySeed(seed),
		vine.WithRecoveryTimeout(20*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	workers := make(map[string]*vine.Worker, 2)
	for i := 0; i < 2; i++ {
		name := fmt.Sprintf("w%d", i)
		w, err := vine.NewWorker(mgr.Addr(),
			vine.WithName(name),
			vine.WithCores(1),
			vine.WithCacheDir(t.TempDir()),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
		workers[name] = w
	}
	if err := mgr.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	opts := daskvine.Options{Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second}
	if kill {
		var once sync.Once
		opts.OnTaskDone = func(key dag.Key, h *vine.TaskHandle) {
			if _, ok := graph.Task(key).Spec.(*coffea.ProcessSpec); !ok {
				return
			}
			once.Do(func() {
				if w := workers[h.Worker()]; w != nil {
					w.Stop()
				}
			})
		}
	}
	res, err := daskvine.Run(mgr, graph, root, opts)
	if err != nil {
		t.Fatalf("workload failed (kill=%v): %v", kill, err)
	}
	met := res.H["met"]
	if met == nil || met.Entries == 0 {
		t.Fatalf("empty MET histogram (kill=%v)", kill)
	}
	return met.Marshal(), mgr.Stats(), rec
}

// TestChaosSoakLineageRecovery kills the only worker holding an
// intermediate mid-run: the run must still complete — via lineage
// re-execution of the lost producer, visible in counters and trace —
// and the recovered histogram must be bit-identical to a fault-free
// run, twice over with the same seed.
func TestChaosSoakLineageRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	base, _, _ := runRecovery(t, 7, false)
	got, st, rec := runRecovery(t, 7, true)
	if !bytes.Equal(base, got) {
		t.Fatalf("recovered run diverged from fault-free run: %d vs %d bytes", len(base), len(got))
	}
	if st.LineageReruns < 1 {
		t.Fatalf("LineageReruns = %d, want >= 1", st.LineageReruns)
	}
	rollbacks := 0
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvLineageRollback {
			rollbacks++
		}
	}
	if rollbacks == 0 {
		t.Fatal("no EvLineageRollback in the trace of a sole-replica loss")
	}
	again, st2, _ := runRecovery(t, 7, true)
	if !bytes.Equal(got, again) {
		t.Fatal("same-seed recovery runs diverged")
	}
	if st2.LineageReruns < 1 {
		t.Fatalf("rerun LineageReruns = %d, want >= 1", st2.LineageReruns)
	}
}

// TestChaosCorruptTransferHealed seeds one payload corruption per worker
// fetch stream and proves the integrity envelope end to end: the flip is
// detected by the CRC-32C check, surfaced as EvFileCorrupt, the replica
// quarantined, and the run heals — from another clean replica or, when
// the corrupted copy was the last one, through lineage re-execution —
// with histograms bit-identical to the fault-free pass.
func TestChaosCorruptTransferHealed(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(20 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	graph, root := recoveryWorkload(t)

	rec := obs.NewRecorder()
	// One corruption armed per worker: whichever worker pulls a payload
	// first claims its flip. Offset 16 lands inside the transfer body,
	// past the "OK <size>\n" header.
	plan := chaos.NewPlan(21).Add(
		chaos.Fault{Kind: chaos.KindCorrupt, Target: "w0/fetch", At: time.Millisecond, Offset: 16},
		chaos.Fault{Kind: chaos.KindCorrupt, Target: "w1/fetch", At: time.Millisecond, Offset: 16},
	)
	plan.SetRecorder(rec)
	defer plan.Stop()

	mgr, err := vine.NewManager(
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, true),
		vine.WithRecorder(rec),
		vine.WithMaxRetries(10),
		vine.WithRetryBackoff(5*time.Millisecond, 40*time.Millisecond),
		vine.WithRetrySeed(21),
		vine.WithRecoveryTimeout(20*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Stop()
	for i := 0; i < 2; i++ {
		w, err := vine.NewWorker(mgr.Addr(),
			vine.WithName(fmt.Sprintf("w%d", i)),
			vine.WithCores(1),
			vine.WithCacheDir(t.TempDir()),
			vine.WithFaultInjector(plan),
			vine.WithTransferTimeout(time.Second),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer w.Stop()
	}
	if err := mgr.WaitForWorkers(2, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	opts := daskvine.Options{Mode: vine.ModeFunctionCall, Timeout: 60 * time.Second}

	// Pass 1: plan not started — a fault-free baseline that also warms
	// every dataset replica onto the workers, so the corruptions armed
	// for pass 2 land on intermediate (histogram) transfers.
	var hmu sync.Mutex
	handles := make(map[dag.Key]*vine.TaskHandle)
	warmOpts := opts
	warmOpts.OnTaskDone = func(key dag.Key, h *vine.TaskHandle) {
		hmu.Lock()
		handles[key] = h
		hmu.Unlock()
	}
	base, err := daskvine.Run(mgr, graph, root, warmOpts)
	if err != nil {
		t.Fatalf("baseline run failed: %v", err)
	}

	// Forget every pass-1 output (the done-callbacks race Run's return,
	// so wait for all of them first). Pass 2 then has warm dataset
	// replicas but no histogram replicas: its accumulation must move at
	// least one freshly produced hist blob worker→worker, which is the
	// transfer the armed corruption will hit.
	deadline := time.Now().Add(2 * time.Second)
	for {
		hmu.Lock()
		n := len(handles)
		hmu.Unlock()
		if n == graph.Len() || time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	hmu.Lock()
	for _, h := range handles {
		if cn, ok := h.Output("hist"); ok {
			mgr.Unlink(cn)
		}
	}
	hmu.Unlock()

	plan.Start()
	deadline = time.Now().Add(2 * time.Second)
	for plan.Fired() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if plan.Fired() < 2 {
		t.Fatalf("only %d of 2 corruption faults armed", plan.Fired())
	}

	// Pass 2: the same graph, resubmitted. Content-addressed cachenames
	// make the reruns byte-compatible, and the first payload a worker
	// fetches arrives with one bit flipped.
	faulted, err := daskvine.Run(mgr, graph, root, opts)
	if err != nil {
		t.Fatalf("corrupted run failed to heal: %v", err)
	}
	if !bytes.Equal(base.H["met"].Marshal(), faulted.H["met"].Marshal()) {
		t.Fatal("healed run's histogram differs from fault-free baseline")
	}
	st := mgr.Stats()
	if st.CorruptTransfers < 1 {
		t.Fatalf("CorruptTransfers = %d, want >= 1", st.CorruptTransfers)
	}
	corrupt := 0
	for _, ev := range rec.Events() {
		if ev.Type == obs.EvFileCorrupt {
			corrupt++
		}
	}
	if corrupt == 0 {
		t.Fatal("no EvFileCorrupt event for the seeded corruption")
	}
}

// TestChaosSoakDeterministic is the headline robustness test: the same
// seeded fault plan applied twice yields byte-identical results, while
// every scheduled fault actually fires.
func TestChaosSoakDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	r1, fired1 := runSoak(t, 7)
	if fired1 < 4 {
		t.Fatalf("only %d of 4 scheduled faults fired", fired1)
	}
	r2, fired2 := runSoak(t, 7)
	if fired2 != fired1 {
		t.Fatalf("fault counts diverged across same-seed runs: %d vs %d", fired1, fired2)
	}
	if !bytes.Equal(r1, r2) {
		t.Fatalf("same-seed runs diverged: %d vs %d result bytes", len(r1), len(r2))
	}
}
