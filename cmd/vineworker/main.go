// Command vineworker is a standalone TaskVine worker: it connects to a
// manager (e.g. one started by cmd/vinerun with -listen-only workers), holds
// a content-addressed cache on local disk, serves peer transfers, and hosts
// the coffea serverless library — the role the paper's workers play on
// HTCondor execute nodes.
//
//	vineworker -manager 127.0.0.1:9123 [-cores 12] [-name nodeA] [-dir /tmp/cache] [-disk 108e9]
//
// With -managers, the worker knows the cluster's full manager address
// list (primary first, hot standbys after) and redials through it on
// silence — riding through a lease-based failover instead of exiting.
//
// SIGTERM is a preemption notice — the shape HTCondor eviction and spot
// reclamation deliver: the worker announces a graceful drain to the
// manager, stops accepting work, evacuates sole-replica cache entries,
// and exits within -drain-grace. A second signal (or SIGINT) skips the
// grace and stops hard.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/daskvine"
	"hepvine/internal/params"
	"hepvine/internal/vine"
)

func main() {
	manager := flag.String("manager", "", "manager control address (host:port), required")
	cores := flag.Int("cores", 12, "advertised execution slots")
	name := flag.String("name", "", "worker name (default: local address)")
	dir := flag.String("dir", "", "cache directory (default: a temp dir)")
	disk := flag.Int64("disk", 0, "cache byte limit; 0 = unlimited")
	persist := flag.Bool("persist", false, "keep the cache across restarts: scrub it on startup and report survivors to the manager (requires -dir)")
	orphanTTL := flag.Duration("orphan-ttl", 10*time.Minute, "with -persist, evict cache entries the manager never re-recognizes after this long")
	reconnect := flag.Int("reconnect", 0, "redial the manager up to N times after a lost connection (0 = exit on disconnect)")
	backoff := flag.Duration("backoff", 250*time.Millisecond, "delay between reconnect attempts")
	managers := flag.String("managers", "", "comma-separated standby manager addresses to redial through on failover (implies reconnection)")
	drainGrace := flag.Duration("drain-grace", params.DefaultDrainGrace, "grace window for a SIGTERM-triggered graceful drain before the worker exits")
	preemptible := flag.Bool("preemptible", false, "advertise this worker as preemptible so the manager spreads sole-replica data away from it")
	flag.Parse()

	if *manager == "" {
		fmt.Fprintln(os.Stderr, "vineworker: -manager is required")
		flag.Usage()
		os.Exit(2)
	}
	if *persist && *dir == "" {
		fmt.Fprintln(os.Stderr, "vineworker: -persist requires -dir")
		flag.Usage()
		os.Exit(2)
	}

	// The worker binary must know every library the manager may install.
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(100 * time.Millisecond)); err != nil {
		log.Fatal(err)
	}

	opts := []vine.Option{
		vine.WithName(*name),
		vine.WithCores(*cores),
		vine.WithCacheDir(*dir),
		vine.WithDiskLimit(*disk),
		vine.WithPreemptible(*preemptible),
	}
	if *persist {
		opts = append(opts,
			vine.WithPersistentCache(true),
			vine.WithOrphanTTL(*orphanTTL),
		)
	}
	if *managers != "" {
		var list []string
		for _, a := range strings.Split(*managers, ",") {
			if a = strings.TrimSpace(a); a != "" {
				list = append(list, a)
			}
		}
		opts = append(opts, vine.WithManagers(list...))
		if *reconnect <= 0 {
			// A worker that knows standby addresses but exits on the first
			// disconnect could never ride through a failover.
			*reconnect = 400
		}
	}
	if *reconnect > 0 {
		opts = append(opts, vine.WithReconnect(*reconnect, *backoff))
	}
	w, err := vine.NewWorker(*manager, opts...)
	if err != nil {
		log.Fatalf("vineworker: %v", err)
	}
	log.Printf("worker %s: %d cores, transfer server %s, manager %s",
		w.Name, *cores, w.TransferAddr(), *manager)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case <-w.Done():
		log.Printf("worker %s: manager disconnected", w.Name)
	case s := <-sig:
		if s == syscall.SIGTERM {
			// Preemption notice: drain gracefully. The worker exits on its
			// own once the manager releases it (or the grace blows); a
			// second signal stops it hard.
			log.Printf("worker %s: %v, draining (grace %v)", w.Name, s, *drainGrace)
			w.Drain(*drainGrace)
			select {
			case <-w.Done():
				log.Printf("worker %s: drained clean", w.Name)
			case s2 := <-sig:
				log.Printf("worker %s: %v during drain, stopping hard", w.Name, s2)
				w.Stop()
			}
		} else {
			log.Printf("worker %s: %v, shutting down", w.Name, s)
			w.Stop()
		}
	}
	st := w.Stats()
	log.Printf("worker %s: ran %d tasks + %d function calls, %d transfers in (%d bytes), cache high water %d bytes",
		w.Name, st.TasksRun, st.FunctionCalls, st.TransfersIn, st.BytesIn, st.CacheHighWater)
}
