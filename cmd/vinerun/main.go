// Command vinerun executes a complete analysis workflow on the live
// TaskVine engine: it takes (or synthesizes) a dataset of .vrt event files,
// partitions it into chunks, lowers the chosen processor into a task graph,
// and runs it with either in-process workers or external vineworker
// processes that dial in.
//
// Self-contained run, 4 local workers:
//
//	vinerun -processor dv3 -generate 8x20000 -workers 4
//
// With external workers (start vineworker against the printed address):
//
//	vinerun -processor met -data ./mydata -workers 0 -min-workers 2
//
// Hot standby (high availability): a journaled primary holds a leadership
// lease in its run directory; a second vinerun started with -standby tails
// the same journal, and when the primary dies it takes over on the given
// address and drives the identical workflow to completion, warm from the
// replayed history. Point workers at both with vineworker -managers.
//
//	vinerun -processor met -data ./mydata -journal ./run -workers 0          # primary
//	vinerun -processor met -data ./mydata -journal ./run -workers 0 \
//	        -standby 127.0.0.1:9200                                          # standby
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/coffea"
	"hepvine/internal/dag"
	"hepvine/internal/daskvine"
	"hepvine/internal/foreman"
	"hepvine/internal/ha"
	"hepvine/internal/journal"
	"hepvine/internal/obs"
	"hepvine/internal/pool"
	"hepvine/internal/rootio"
	"hepvine/internal/vine"
)

func main() {
	processor := flag.String("processor", "met", "registered processor: met, dv3, rs-triphoton")
	data := flag.String("data", "", "directory of .vrt files (omit with -generate)")
	fileset := flag.String("fileset", "", "fileset JSON manifest (overrides -data/-generate)")
	generate := flag.String("generate", "", "synthesize a dataset, e.g. 8x20000 (files x events)")
	chunk := flag.Int64("chunk", 5000, "events per chunk")
	fanIn := flag.Int("fanin", 2, "accumulation fan-in; <2 = single reduction task")
	workers := flag.Int("workers", 4, "in-process workers to start (0 = external only)")
	cores := flag.Int("cores", 4, "cores per in-process worker")
	minWorkers := flag.Int("min-workers", 1, "wait for this many workers before running")
	mode := flag.String("mode", "function-calls", "execution mode: tasks or function-calls")
	hoist := flag.Bool("hoist", true, "hoist library imports")
	timeout := flag.Duration("timeout", 10*time.Minute, "workflow timeout")
	trace := flag.String("trace", "", "write a JSONL event trace to this file")
	metrics := flag.Bool("metrics", false, "dump the manager metrics registry after the run")
	journalDir := flag.String("journal", "", "durable run directory: journal + persistent worker caches; repeat a run against it for a warm restart")
	standby := flag.String("standby", "", "run as a hot standby that takes over on this address when the primary's lease lapses (requires -journal)")
	poolMin := flag.Int("pool-min", 1, "with -pool-max: autoscaled pool floor")
	poolMax := flag.Int("pool-max", 0, "autoscale an in-process worker pool between -pool-min and this instead of the fixed -workers pool (0 = fixed)")
	foremen := flag.Int("foremen", 0, "run federated: a root manager over this many foreman shards instead of a flat worker pool")
	workersPerForeman := flag.Int("workers-per-foreman", 2, "with -foremen, in-process workers started in each shard")
	flag.Parse()

	if err := run(*processor, *data, *generate, *fileset, *chunk, *fanIn, *workers, *cores, *minWorkers, *mode, *hoist, *timeout, *trace, *metrics, *journalDir, *standby, *poolMin, *poolMax, *foremen, *workersPerForeman); err != nil {
		log.Fatalf("vinerun: %v", err)
	}
}

func run(processor, data, generate, filesetPath string, chunkSize int64, fanIn, nWorkers, cores, minWorkers int,
	mode string, hoist bool, timeout time.Duration, tracePath string, dumpMetrics bool, journalDir, standbyAddr string,
	poolMin, poolMax, foremen, workersPerForeman int) error {

	if standbyAddr != "" && journalDir == "" {
		return fmt.Errorf("-standby requires -journal (the directory whose journal and lease it watches)")
	}
	if foremen > 0 && (standbyAddr != "" || journalDir != "" || poolMax > 0) {
		return fmt.Errorf("-foremen is incompatible with -standby, -journal, and -pool-max")
	}

	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(100 * time.Millisecond)); err != nil {
		return err
	}
	if _, err := coffea.Lookup(processor); err != nil {
		return fmt.Errorf("%w (registered: %s)", err, strings.Join(coffea.RegisteredProcessors(), ", "))
	}
	var taskMode vine.TaskMode
	switch mode {
	case "tasks", "task":
		taskMode = vine.ModeTask
	case "function-calls", "function-call", "functions":
		taskMode = vine.ModeFunctionCall
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	// Locate or synthesize the dataset.
	if filesetPath == "" && data == "" && generate == "" {
		generate = "4x10000"
	}
	if filesetPath == "" && generate != "" {
		var nFiles, nEvents int
		if _, err := fmt.Sscanf(generate, "%dx%d", &nFiles, &nEvents); err != nil || nFiles <= 0 || nEvents <= 0 {
			return fmt.Errorf("bad -generate %q, want FILESxEVENTS", generate)
		}
		dir, err := os.MkdirTemp("", "vinerun-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		fmt.Printf("synthesizing %d files x %d events...\n", nFiles, nEvents)
		if _, err := rootio.WriteDataset(dir, rootio.DatasetSpec{
			Name: "generated", Files: nFiles, EventsPerFile: nEvents,
			Gen: rootio.GenOptions{Seed: 1, SignalFrac: 0.03, MeanPhot: 1.0},
		}); err != nil {
			return err
		}
		data = dir
	}

	// Build the fileset: explicit manifest, or a scan of the data dir.
	var fset *coffea.Fileset
	var err error
	if filesetPath != "" {
		fset, err = coffea.LoadFileset(filesetPath)
	} else {
		fset, err = coffea.ScanDirFileset("dataset", data)
	}
	if err != nil {
		return err
	}
	datasets, err := fset.Chunks(chunkSize)
	if err != nil {
		return err
	}
	nChunks, nFiles := 0, 0
	for _, name := range fset.Names() {
		nChunks += len(datasets[name])
		nFiles += len(fset.Datasets[name])
	}
	var graph *dag.Graph
	var root dag.Key
	if len(datasets) == 1 {
		graph, root, err = coffea.BuildGraph(processor, datasets[fset.Names()[0]], coffea.GraphOptions{FanIn: fanIn})
	} else {
		graph, root, err = coffea.BuildMultiDatasetGraph(processor, datasets, coffea.GraphOptions{FanIn: fanIn})
	}
	if err != nil {
		return err
	}
	fmt.Printf("workflow: %s over %d events in %d files / %d datasets -> %d chunks, %d tasks (width %d, depth %d)\n",
		processor, fset.TotalEvents(), nFiles, len(datasets), nChunks, graph.Len(), graph.MaxWidth(), graph.CriticalPathLen())

	var rec *obs.Recorder
	if tracePath != "" {
		rec = obs.NewRecorder()
	}
	mgrOpts := []vine.Option{
		vine.WithPeerTransfers(true),
		vine.WithLibrary(daskvine.LibraryName, hoist),
		vine.WithRecorder(rec),
	}
	var mgr *vine.Manager
	var jr *journal.Journal
	var fed *foreman.LocalFederation
	switch {
	case foremen > 0:
		// Federated run: a root manager leases task batches to foreman
		// shards, each with its own scheduler and in-process worker pool;
		// cross-shard inputs ride root-brokered peer-transfer tickets.
		fed, err = foreman.NewLocalFederation(foreman.LocalConfig{
			Foremen:           foremen,
			WorkersPerForeman: workersPerForeman,
			CoresPerWorker:    cores,
			RootOptions:       []vine.Option{vine.WithRecorder(rec)},
			LocalOptions: func(int) []vine.Option {
				return []vine.Option{
					vine.WithPeerTransfers(true),
					vine.WithLibrary(daskvine.LibraryName, hoist),
					vine.WithRecorder(rec),
				}
			},
			WorkerOptions: func(shard, n int) []vine.Option {
				return []vine.Option{vine.WithRecorder(rec)}
			},
		})
		if err != nil {
			return err
		}
		defer fed.Stop()
		mgr = fed.Root
		nWorkers, minWorkers = 0, foremen
		fmt.Printf("federated: root %s over %d foremen x %d workers x %d cores\n",
			mgr.Addr(), foremen, workersPerForeman, cores)
	case standbyAddr != "":
		// Hot standby: tail the primary's journal and lease; on takeover
		// the standby's manager comes up warm and this process drives the
		// identical workflow to completion.
		sb, err := ha.NewStandby(ha.Config{
			JournalDir:     filepath.Join(journalDir, "journal"),
			Addr:           standbyAddr,
			Name:           fmt.Sprintf("standby-%d", os.Getpid()),
			ManagerOptions: mgrOpts,
			Recorder:       rec,
		})
		if err != nil {
			return err
		}
		fmt.Printf("hot standby: tailing %s, will take over on %s when the primary's lease lapses\n",
			filepath.Join(journalDir, "journal"), standbyAddr)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		select {
		case <-sb.Ready():
		case s := <-sig:
			fmt.Printf("standby: %v before takeover (%d journal records folded), exiting\n", s, sb.Applied())
			sb.Stop()
			return nil
		}
		signal.Stop(sig)
		if err := sb.Err(); err != nil {
			return err
		}
		defer sb.Stop()
		mgr = sb.Manager()
		fmt.Printf("takeover: manager listening at %s (%d journal records folded)\n", mgr.Addr(), sb.Applied())
	case journalDir != "":
		if err := os.MkdirAll(journalDir, 0o755); err != nil {
			return err
		}
		jr, err = journal.Open(filepath.Join(journalDir, "journal"), journal.Options{})
		if err != nil {
			return err
		}
		defer jr.Close()
		// Hold the leadership lease alongside the journal so a -standby
		// vinerun can detect this primary's death and take over.
		lease, err := ha.AcquireLease(ha.DefaultLeasePath(jr.Dir()), "primary", ha.DefaultTTL)
		if err != nil {
			return err
		}
		defer lease.Release()
		mgrOpts = append(mgrOpts, vine.WithJournal(jr), vine.WithLease(lease))
		fallthrough
	default:
		if mgr == nil {
			mgr, err = vine.NewManager(mgrOpts...)
			if err != nil {
				return err
			}
			defer mgr.Stop()
		}
		fmt.Printf("manager listening at %s\n", mgr.Addr())
	}
	if jr != nil {
		jst := jr.Stats()
		if jst.Replayed > 0 {
			fmt.Printf("journal: replayed %d records (%d skipped) from %s\n", jst.Replayed, jst.Skipped, jr.Dir())
		}
	}
	var scaler *pool.Autoscaler
	if poolMax > 0 {
		// Elastic mode: an autoscaled local pool replaces the fixed
		// -workers loop. The control loop grows the pool with queue
		// backlog and shrinks it by graceful drain when the run goes
		// quiet.
		prov := pool.NewLocalProvider(mgr.Addr(), func(name string) []vine.Option {
			return []vine.Option{vine.WithCores(cores), vine.WithRecorder(rec)}
		})
		scaler = pool.NewAutoscaler(mgr, prov, pool.Config{Min: poolMin, Max: poolMax})
		scaler.Start()
		defer func() {
			scaler.Stop()
			prov.StopAll()
		}()
		nWorkers = 0
		if minWorkers > poolMin {
			minWorkers = poolMin
		}
		fmt.Printf("elastic pool: autoscaling between %d and %d workers\n", poolMin, poolMax)
	}
	for i := 0; i < nWorkers; i++ {
		wOpts := []vine.Option{
			vine.WithName(fmt.Sprintf("local-%d", i)),
			vine.WithCores(cores),
			vine.WithRecorder(rec),
		}
		if journalDir != "" {
			// Stable per-worker cache dirs make the second run warm: the
			// scrubbed survivors come back as replicas in the hello.
			wOpts = append(wOpts,
				vine.WithCacheDir(filepath.Join(journalDir, fmt.Sprintf("worker-%d", i))),
				vine.WithPersistentCache(true),
				vine.WithReconnect(20, 250*time.Millisecond),
			)
		}
		w, err := vine.NewWorker(mgr.Addr(), wOpts...)
		if err != nil {
			return err
		}
		defer w.Stop()
	}
	need := minWorkers
	if nWorkers > need {
		need = nWorkers
	}
	if nWorkers == 0 && fed == nil {
		fmt.Printf("waiting for %d external vineworker(s) to connect...\n", need)
	}
	if err := mgr.WaitForWorkers(need, 10*time.Minute); err != nil {
		return err
	}
	fmt.Printf("%d workers connected; running in %s mode (hoist=%v)\n", mgr.WorkerCount(), taskMode, hoist)

	start := time.Now()
	result, err := daskvine.Run(mgr, graph, root, daskvine.Options{Mode: taskMode, Timeout: timeout})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	st := mgr.Stats()
	fmt.Printf("\ncompleted in %v: %d tasks (%d retries), %d peer transfers (%.1f MB), %d manager transfers, %d workers lost\n",
		elapsed.Round(time.Millisecond), st.TasksDone, st.Retries,
		st.PeerTransfers, float64(st.PeerBytes)/1e6, st.ManagerTransfers, st.WorkersLost)
	if jr != nil || standbyAddr != "" {
		fmt.Printf("durability: %d warm hits, %d journal appends, %d records replayed at startup\n",
			st.WarmHits, st.JournalAppends, st.JournalReplayed)
	}
	if standbyAddr != "" {
		fmt.Printf("availability: takeover latency %v (lease expiry to first dispatch)\n",
			mgr.TakeoverLatency().Round(time.Millisecond))
	}
	if scaler != nil {
		ups, downs := scaler.ScaleEvents()
		fmt.Printf("elasticity: pool peaked at %d workers (%d scale-ups, %d drains), %d preemptions, %d sole-replica offloads\n",
			scaler.Peak(), ups, downs, st.Preemptions, st.SoleReplicaOffloads)
	}
	if fed != nil {
		fst := mgr.FederationStats()
		fmt.Printf("federation: %d task leases in %d batched frames; %d cross-shard transfers (%.1f MB)\n",
			fst.LeaseGrants, fst.LeaseBatches, fst.CrossShard, float64(fst.CrossShardBytes)/1e6)
		for _, sh := range fst.Shards {
			fmt.Printf("  shard %-12s %5d tasks, %4d cached files, backlog %d\n",
				sh.Name, sh.TasksDone, sh.CachedFiles, sh.Backlog)
		}
	}

	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := rec.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d events -> %s\n", rec.Len(), tracePath)
	}
	if dumpMetrics {
		fmt.Println("\n# manager metrics")
		mgr.WriteMetrics(os.Stdout)
	}

	for _, name := range result.Names() {
		h := result.H[name]
		fmt.Printf("\n%s: %s\n", name, h)
		coarse := h
		if h.Axes[0].Bins%4 == 0 {
			if c, err := h.Rebin(4); err == nil {
				coarse = c
			}
		}
		fmt.Println(coarse.ASCII(50))
	}
	return nil
}
