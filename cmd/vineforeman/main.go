// Command vineforeman is a standalone foreman: the middle tier of a
// federated cluster. It registers with a root manager (started by
// cmd/vinerun or cmd/vinegate) as one high-capacity shard, runs its own
// local manager for workers to dial — vineworker -manager <this> — and
// relays batched task leases downward and aggregated completion reports
// upward, so the root's control traffic stays per-shard, not per-task.
//
//	vineforeman -root 127.0.0.1:9123 -listen 0.0.0.0:9200 -cores 48 [-name rack7]
//
// With -roots, the foreman knows the root cluster's full manager address
// list (primary first, hot standbys after) and redials its uplink
// through it on failover. With -pool-max, the foreman additionally runs
// a local autoscaled worker pool in-process — the single-binary shard
// for laptops and CI.
//
// SIGINT/SIGTERM stop the foreman gracefully: the uplink closes first so
// the root re-homes outstanding leases, then the local manager stops.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"hepvine/internal/apps"
	"hepvine/internal/daskvine"
	"hepvine/internal/foreman"
	"hepvine/internal/params"
	"hepvine/internal/pool"
	"hepvine/internal/vine"
)

func main() {
	root := flag.String("root", "", "root manager control address (host:port), required")
	roots := flag.String("roots", "", "comma-separated standby root addresses to redial the uplink through on failover")
	name := flag.String("name", "", "shard name the root sees (default: foreman)")
	listen := flag.String("listen", "", "local manager listen address workers dial (default: ephemeral loopback)")
	hoist := flag.Bool("hoist", true, "hoist library imports when installing on shard workers")
	cores := flag.Int("cores", 0, "aggregate cores advertised to the root, required")
	memory := flag.Int64("memory", 0, "aggregate memory advertised to the root; 0 = unlimited")
	reportEvery := flag.Duration("report-every", params.DefaultForemanReportEvery, "upward completion/inventory report cadence")
	poolMax := flag.Int("pool-max", 0, "run a local autoscaled worker pool up to this many workers (0 = workers dial in externally)")
	poolMin := flag.Int("pool-min", 0, "with -pool-max, the pool floor")
	poolCores := flag.Int("pool-cores", 4, "with -pool-max, cores per pooled worker")
	flag.Parse()

	if *root == "" || *cores <= 0 {
		fmt.Fprintln(os.Stderr, "vineforeman: -root and -cores are required")
		flag.Usage()
		os.Exit(2)
	}

	// The shard's local manager installs libraries on its own workers, so
	// the foreman binary must know every library the root may lease work
	// against — same registry as vineworker.
	apps.RegisterProcessors()
	if err := vine.RegisterLibrary(daskvine.NewLibrary(100 * time.Millisecond)); err != nil {
		log.Fatal(err)
	}

	var fallbacks []string
	for _, a := range strings.Split(*roots, ",") {
		if a = strings.TrimSpace(a); a != "" {
			fallbacks = append(fallbacks, a)
		}
	}
	opts := foreman.Options{
		Name:          *name,
		RootAddr:      *root,
		RootFallbacks: fallbacks,
		Cores:         *cores,
		Memory:        *memory,
		ReportEvery:   *reportEvery,
		Local: []vine.Option{
			vine.WithPeerTransfers(true),
			vine.WithListenAddr(*listen),
			// The shard's local manager installs leased-against libraries
			// on its own workers — without this, function-call leases park
			// forever waiting for a library no worker ever receives.
			vine.WithLibrary(daskvine.LibraryName, *hoist),
		},
	}
	if *poolMax > 0 {
		opts.Autoscale = &pool.Config{Min: *poolMin, Max: *poolMax}
		opts.WorkerOptions = func(wname string) []vine.Option {
			return []vine.Option{vine.WithName(wname), vine.WithCores(*poolCores)}
		}
	}
	f, err := foreman.New(opts)
	if err != nil {
		log.Fatalf("vineforeman: %v", err)
	}
	log.Printf("foreman %s: %d cores advertised to root %s, workers dial %s",
		f.Name(), *cores, *root, f.LocalAddr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	s := <-sig
	log.Printf("foreman %s: %v, shutting down", f.Name(), s)
	f.Stop()
	leased, done := f.Counts()
	log.Printf("foreman %s: %d leases accepted, %d completions reported", f.Name(), leased, done)
}
