// Command vinegate is the analysis-facility front door: it runs one
// (optionally journaled) TaskVine manager behind a multi-tenant HTTP
// submission service, and doubles as the command-line client for it.
//
// Daemon — 4 in-process workers, journaled run state, two tenants with
// 2:1 fair share:
//
//	vinegate serve -listen 127.0.0.1:9123 -journal ./run -workers 4 \
//	        -tenants alice=2,bob=1
//
// Clients (any HTTP speaker works; these modes wrap the same API):
//
//	vinegate open   -gate http://127.0.0.1:9123 -tenant alice -session s1
//	vinegate submit -gate ... -tenant alice -session s1 -file dag.json
//	vinegate status -gate ... -tenant alice -session s1 [-task t1]
//	vinegate events -gate ... -tenant alice -session s1 -since 0 -wait 5s
//	vinegate fetch  -gate ... -tenant alice -name out:...:out -o hist.bin
//	vinegate stats  -gate ...
//	vinegate close  -gate ... -tenant alice -session s1
//
// dag.json is a gate.SubmitRequest: a list of task specs, producers
// before consumers, with within-DAG input references by task label.
// On SIGINT/SIGTERM the daemon drains: new submissions get 503,
// in-flight tasks finish, the journal is synced, then it exits.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hepvine/internal/gate"
	"hepvine/internal/ha"
	"hepvine/internal/journal"
	"hepvine/internal/params"
	"hepvine/internal/vine"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vinegate: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "open", "close", "submit", "status", "events", "fetch", "stats":
		err = client(os.Args[1], os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: vinegate <mode> [flags]
modes: serve | open | close | submit | status | events | fetch | stats
run "vinegate <mode> -h" for that mode's flags`)
}

// demoLib is the library the daemon registers so the README walkthrough
// (and any curl session) has something runnable without writing Go.
func demoLib() *vine.Library {
	return &vine.Library{
		Name: "demo",
		Funcs: map[string]vine.Function{
			"echo": func(c *vine.Call) error {
				c.SetOutput("out", append([]byte("echo:"), c.Args...))
				return nil
			},
			"upper": func(c *vine.Call) error {
				in, err := c.Input("in")
				if err != nil {
					return err
				}
				c.SetOutput("out", bytes.ToUpper(in))
				return nil
			},
			"wordcount": func(c *vine.Call) error {
				in, err := c.Input("in")
				if err != nil {
					return err
				}
				n := len(bytes.Fields(in))
				c.SetOutput("out", []byte(strconv.Itoa(n)))
				return nil
			},
		},
	}
}

// ---- serve ----

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	listen := fs.String("listen", "127.0.0.1:9123", "HTTP listen address for the gate API")
	journalDir := fs.String("journal", "", "durable run directory (journal + lease + worker caches)")
	workers := fs.Int("workers", 4, "in-process workers to start (0 = external vineworkers only)")
	cores := fs.Int("cores", 4, "cores per in-process worker")
	tenants := fs.String("tenants", "", "pre-configured tenants as name=weight[,name=weight...]")
	maxSessions := fs.Int("max-sessions", params.DefaultGateMaxSessions, "default per-tenant session cap")
	maxInFlight := fs.Int("max-inflight", params.DefaultGateMaxInFlight, "default per-tenant in-flight task cap")
	rate := fs.Float64("rate", params.DefaultGateSubmitRate, "default per-tenant submissions/sec")
	burst := fs.Int("burst", params.DefaultGateSubmitBurst, "default per-tenant submission burst")
	drainTimeout := fs.Duration("drain-timeout", params.DefaultGateDrainTimeout, "max wait for in-flight tasks at shutdown")
	fs.Parse(args)

	vine.MustRegisterLibrary(demoLib())
	cfg := gate.Config{
		Default: gate.TenantConfig{
			MaxSessions: *maxSessions, MaxInFlight: *maxInFlight,
			SubmitRate: *rate, SubmitBurst: *burst,
		},
		Tenants:      make(map[string]gate.TenantConfig),
		DrainTimeout: *drainTimeout,
	}
	if *tenants != "" {
		for _, part := range strings.Split(*tenants, ",") {
			name, weightStr, ok := strings.Cut(strings.TrimSpace(part), "=")
			if !ok || name == "" {
				return fmt.Errorf("bad -tenants entry %q, want name=weight", part)
			}
			w, err := strconv.ParseFloat(weightStr, 64)
			if err != nil || w <= 0 {
				return fmt.Errorf("bad weight in -tenants entry %q", part)
			}
			tc := cfg.Default
			tc.QueueWeight = w
			cfg.Tenants[name] = tc
		}
	}

	mgrOpts := []vine.Option{
		vine.WithPeerTransfers(true),
		vine.WithLibrary("demo", true),
	}
	var jr *journal.Journal
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			return err
		}
		var err error
		jr, err = journal.Open(filepath.Join(*journalDir, "journal"), journal.Options{})
		if err != nil {
			return err
		}
		defer jr.Close()
		lease, err := ha.AcquireLease(ha.DefaultLeasePath(jr.Dir()), "vinegate", ha.DefaultTTL)
		if err != nil {
			return err
		}
		defer lease.Release()
		mgrOpts = append(mgrOpts, vine.WithJournal(jr), vine.WithLease(lease))
	}
	mgr, err := vine.NewManager(mgrOpts...)
	if err != nil {
		return err
	}
	defer mgr.Stop()
	if jr != nil {
		if st := jr.Stats(); st.Replayed > 0 {
			log.Printf("journal: replayed %d records (%d skipped) from %s", st.Replayed, st.Skipped, jr.Dir())
		}
	}
	for i := 0; i < *workers; i++ {
		wOpts := []vine.Option{
			vine.WithName(fmt.Sprintf("local-%d", i)),
			vine.WithCores(*cores),
			vine.WithLibrary("demo", true),
		}
		if *journalDir != "" {
			wOpts = append(wOpts,
				vine.WithCacheDir(filepath.Join(*journalDir, fmt.Sprintf("worker-%d", i))),
				vine.WithPersistentCache(true),
				vine.WithReconnect(20, 250*time.Millisecond),
			)
		}
		w, err := vine.NewWorker(mgr.Addr(), wOpts...)
		if err != nil {
			return err
		}
		defer w.Stop()
	}
	if *workers > 0 {
		if err := mgr.WaitForWorkers(*workers, time.Minute); err != nil {
			return err
		}
	}
	g := gate.New(mgr, cfg)
	srv := &http.Server{Addr: *listen, Handler: g.Handler()}
	errC := make(chan error, 1)
	go func() { errC <- srv.ListenAndServe() }()
	log.Printf("gate API on http://%s, manager (workers) on %s, %d local workers", *listen, mgr.Addr(), *workers)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case s := <-sig:
		log.Printf("%v: draining (up to %v for %d in-flight tasks)...", s, *drainTimeout, mgr.InFlight())
		if err := g.Drain(*drainTimeout); err != nil {
			log.Printf("drain: %v", err)
		}
		srv.Close()
		<-errC
		mgr.Stop() // syncs the journal
		log.Printf("drained and stopped")
		return nil
	case err := <-errC:
		return err
	}
}

// ---- client modes ----

func client(mode string, args []string) error {
	fs := flag.NewFlagSet(mode, flag.ExitOnError)
	base := fs.String("gate", envOr("VINEGATE_URL", "http://127.0.0.1:9123"), "gate base URL")
	tenant := fs.String("tenant", envOr("VINEGATE_TENANT", ""), "tenant identity (X-Vine-Tenant)")
	session := fs.String("session", "", "session name")
	file := fs.String("file", "", "submit: SubmitRequest JSON file (- = stdin)")
	task := fs.String("task", "", "status: poll one task id instead of the session")
	wait := fs.Duration("wait", 0, "events: server-side long-poll window; status: poll until terminal")
	since := fs.Int64("since", 0, "events: return events with seq > since")
	name := fs.String("name", "", "fetch: result cachename")
	out := fs.String("o", "", "fetch: output file (default stdout)")
	fs.Parse(args)

	c := &gate.Client{Base: *base, Tenant: *tenant}
	switch mode {
	case "open":
		st, err := c.OpenSession(*session)
		return emit(st, err)
	case "close":
		if err := c.CloseSession(*session); err != nil {
			return err
		}
		fmt.Printf("closed %s\n", *session)
		return nil
	case "submit":
		if *file == "" {
			return fmt.Errorf("submit needs -file (SubmitRequest JSON, - for stdin)")
		}
		var data []byte
		var err error
		if *file == "-" {
			data, err = io.ReadAll(os.Stdin)
		} else {
			data, err = os.ReadFile(*file)
		}
		if err != nil {
			return err
		}
		var req gate.SubmitRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return fmt.Errorf("parsing %s: %w", *file, err)
		}
		resp, err := c.Submit(*session, req)
		return emit(resp, err)
	case "status":
		if *task != "" {
			if *wait > 0 {
				st, err := c.WaitTask(*session, *task, *wait)
				return emit(st, err)
			}
			st, err := c.TaskStatus(*session, *task)
			return emit(st, err)
		}
		st, err := c.SessionStatus(*session)
		return emit(st, err)
	case "events":
		evs, err := c.Events(*session, *since, *wait)
		return emit(evs, err)
	case "fetch":
		if *name == "" {
			return fmt.Errorf("fetch needs -name")
		}
		data, err := c.Fetch(*name)
		if err != nil {
			return err
		}
		if *out == "" || *out == "-" {
			_, err = os.Stdout.Write(data)
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("%d bytes -> %s\n", len(data), *out)
		return nil
	case "stats":
		st, err := c.Stats()
		return emit(st, err)
	}
	return fmt.Errorf("unknown mode %q", mode)
}

// emit prints the reply as indented JSON (the client modes are meant to
// compose with jq and shell scripts).
func emit(v any, err error) error {
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}
