// Command vinebench regenerates the paper's tables and figures.
//
// Usage:
//
//	vinebench [-scale f] [-seed n] [-v] [experiment ...]
//
// With no arguments it lists experiments. "all" runs everything in paper
// order. -scale 1 (default) is paper scale: DV3-Large on 200 12-core
// workers, DV3-Huge on 600; smaller scales shrink both the workload and the
// pool proportionally for quick looks.
package main

import (
	"flag"
	"fmt"
	"os"

	"hepvine/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload/pool scale factor (0-1]; 1 = paper scale")
	seed := flag.Uint64("seed", 42, "random seed for workload synthesis and the cluster model")
	verbose := flag.Bool("v", false, "print per-series detail (heatmap rows, cache timelines)")
	csvDir := flag.String("csv", "", "also write raw series (timelines, distributions, matrices) as CSV under this directory")
	flag.Parse()

	opts := bench.Options{Scale: *scale, Seed: *seed, Verbose: *verbose, CSVDir: *csvDir}

	args := flag.Args()
	if len(args) == 0 {
		fmt.Println("experiments (pass ids, or \"all\"):")
		for _, e := range bench.All() {
			fmt.Printf("  %-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if len(args) == 1 && args[0] == "all" {
		if err := bench.RunAll(opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "vinebench:", err)
			os.Exit(1)
		}
		return
	}
	for _, id := range args {
		e, err := bench.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vinebench:", err)
			os.Exit(1)
		}
		if err := bench.RunOne(e, opts, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "vinebench:", err)
			os.Exit(1)
		}
	}
}
